"""Code layout: placing functions into temperature-separated sections.

After classification the compiler places code into ``.text.hot``,
``.text.warm`` and ``.text.cold`` sections, in that order (Figure 5).  The
default PGO pipeline keeps whole functions together (hot/cold splitting passes
exist but are disabled by default — Section 4.2), so a function's section is
decided by its hottest block.  Non-PGO compilation produces a single ``.text``
section in original program order.

The layout also decides the padding behaviour discussed in Section 4.9: by
default sections are placed back to back (so a page can straddle two sections
of different temperature); ``pad_sections_to_page`` inserts padding so that
never happens (prevention mechanism 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.addressing import align_up
from repro.common.errors import CompilationError
from repro.common.temperature import Temperature
from repro.compiler.classify import TemperatureMap
from repro.compiler.elf import ELFImage, ELFSection, ProgramHeader
from repro.compiler.ir import BlockId, Function, Program
from repro.compiler.profile import InstrumentationProfile

#: Default image base — an arbitrary but realistic load address.
DEFAULT_IMAGE_BASE = 0x0040_0000

#: Gap between the program image and the external-code region.
EXTERNAL_CODE_GAP = 0x0100_0000


@dataclass
class LayoutConfig:
    """Code layout knobs."""

    image_base: int = DEFAULT_IMAGE_BASE
    #: Align each temperature section to this boundary (1 = back to back).
    section_alignment: int = 64
    #: Align each function's first block (compilers align function entries).
    function_alignment: int = 64
    #: Pad sections to page boundaries so no page mixes temperatures (§4.9).
    pad_sections_to_page: bool = False
    page_size: int = 4096

    def validate(self) -> None:
        if self.image_base < 0:
            raise CompilationError("image_base must be non-negative")
        if self.section_alignment <= 0:
            raise CompilationError("section_alignment must be positive")
        if self.function_alignment <= 0:
            raise CompilationError("function_alignment must be positive")
        if self.page_size <= 0:
            raise CompilationError("page_size must be positive")


def _function_temperature(
    function: Function, temperature_map: TemperatureMap
) -> Temperature:
    """Section a whole function goes to: its hottest block wins."""
    temperatures = {
        temperature_map.temperature(block.block_id) for block in function.blocks
    }
    if Temperature.HOT in temperatures:
        return Temperature.HOT
    if Temperature.WARM in temperatures:
        return Temperature.WARM
    return Temperature.COLD


def _function_hotness(function: Function, profile: InstrumentationProfile) -> int:
    """Sort key used to order functions inside a section (hottest first)."""
    return sum(profile.count(block.block_id) for block in function.blocks)


def _profile_guided_block_order(
    function: Function, profile: InstrumentationProfile
) -> list:
    """PGO basic-block placement within a function.

    Executed blocks keep their relative order and move to the front of the
    function (maximising fall-through on the hot path); never-executed blocks
    (error paths and the like) sink to the end.  This is the machine
    block-placement effect that gives PGO its spatial-locality win in
    Figure 2 — full hot/cold *splitting* across sections stays disabled, as in
    the paper's default pipeline.
    """
    executed = [b for b in function.blocks if profile.count(b.block_id) > 0]
    unexecuted = [b for b in function.blocks if profile.count(b.block_id) <= 0]
    return executed + unexecuted


class CodeLayoutEngine:
    """Assigns virtual addresses to basic blocks and builds ELF images."""

    def __init__(self, config: LayoutConfig | None = None) -> None:
        self.config = config or LayoutConfig()
        self.config.validate()

    # ------------------------------------------------------------ non-PGO
    def layout_plain(self, program: Program) -> ELFImage:
        """Single untagged ``.text`` section in original program order."""
        cursor = self.config.image_base
        block_addresses: dict[BlockId, int] = {}
        start = cursor
        for function in program.functions:
            cursor = align_up(cursor, self.config.function_alignment)
            for block in function.blocks:
                block_addresses[block.block_id] = cursor
                cursor += block.size_bytes
        section = ELFSection(
            name=".text",
            vaddr=start,
            size_bytes=cursor - start,
            temperature=Temperature.NONE,
        )
        return self._finish(program, [section], block_addresses)

    # --------------------------------------------------------------- PGO
    def layout_by_temperature(
        self,
        program: Program,
        temperature_map: TemperatureMap,
        profile: InstrumentationProfile,
    ) -> ELFImage:
        """``.text.hot`` / ``.text.warm`` / ``.text.cold`` layout (Figure 5)."""
        groups: dict[Temperature, list[Function]] = {
            Temperature.HOT: [],
            Temperature.WARM: [],
            Temperature.COLD: [],
        }
        for function in program.functions:
            groups[_function_temperature(function, temperature_map)].append(function)
        for temperature in groups:
            groups[temperature].sort(
                key=lambda fn: _function_hotness(fn, profile), reverse=True
            )

        cursor = self.config.image_base
        block_addresses: dict[BlockId, int] = {}
        sections: list[ELFSection] = []
        section_names = {
            Temperature.HOT: ".text.hot",
            Temperature.WARM: ".text.warm",
            Temperature.COLD: ".text.cold",
        }
        for temperature in Temperature.order():
            functions = groups[temperature]
            cursor = self._align_section_start(cursor)
            start = cursor
            for function in functions:
                cursor = align_up(cursor, self.config.function_alignment)
                for block in _profile_guided_block_order(function, profile):
                    block_addresses[block.block_id] = cursor
                    cursor += block.size_bytes
            sections.append(
                ELFSection(
                    name=section_names[temperature],
                    vaddr=start,
                    size_bytes=cursor - start,
                    temperature=temperature,
                )
            )
        return self._finish(program, sections, block_addresses)

    # -------------------------------------------------------------- helpers
    def _align_section_start(self, cursor: int) -> int:
        if self.config.pad_sections_to_page:
            return align_up(cursor, self.config.page_size)
        return align_up(cursor, self.config.section_alignment)

    def _finish(
        self,
        program: Program,
        sections: list[ELFSection],
        block_addresses: dict[BlockId, int],
    ) -> ELFImage:
        headers = [
            ProgramHeader(
                vaddr=section.vaddr,
                memsz=section.size_bytes,
                executable=True,
                writable=False,
                temperature=section.temperature,
            )
            for section in sections
            if section.size_bytes > 0
        ]
        image_end = max((section.end for section in sections), default=self.config.image_base)
        external_base = align_up(image_end + EXTERNAL_CODE_GAP, self.config.page_size)
        return ELFImage(
            name=program.name,
            sections=sections,
            program_headers=headers,
            block_addresses=block_addresses,
            external_base=external_base,
            external_size=program.external_code_bytes,
        )
