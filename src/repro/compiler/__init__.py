"""Synthetic compiler / PGO substrate (Figure 4, steps 1-5)."""

from repro.compiler.classify import (
    ClassifierConfig,
    TemperatureClassifier,
    TemperatureMap,
)
from repro.compiler.elf import ELFImage, ELFSection, ProgramHeader
from repro.compiler.ir import BasicBlock, BlockId, Function, Program, make_function
from repro.compiler.layout import CodeLayoutEngine, LayoutConfig
from repro.compiler.pgo import CompiledBinary, PGOCompiler
from repro.compiler.profile import InstrumentationProfile

__all__ = [
    "BasicBlock",
    "BlockId",
    "Function",
    "Program",
    "make_function",
    "InstrumentationProfile",
    "ClassifierConfig",
    "TemperatureClassifier",
    "TemperatureMap",
    "CodeLayoutEngine",
    "LayoutConfig",
    "ELFImage",
    "ELFSection",
    "ProgramHeader",
    "CompiledBinary",
    "PGOCompiler",
]
