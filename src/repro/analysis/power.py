"""Static power and area overhead model (Table 4).

The paper uses McPAT at a 22 nm node to estimate the static power and area of
the on-chip components (core, L1-I, L1-D, L2) and charges each replacement
mechanism for the extra storage it needs:

* **TRRIP** and **CLIP** add no storage (temperature travels in existing PTE
  bits / memory-request sidebands), so their overhead is ~0;
* **Emissary** adds two priority bits per cache line in the L1s and L2 plus
  the frontend starvation-tracking datapath;
* **SHiP** adds a 64 kB signature history counter table plus per-line
  signature/outcome bits in the L2.

McPAT itself is not reproducible offline, so this module uses a simple
analytical SRAM-equivalent model: every structure is expressed in kB of SRAM,
logic-dominated structures through an equivalence factor, and overheads are
reported relative to the baseline core + caches.  The constants are calibrated
so the paper configuration lands near Table 4's numbers; the *ordering*
(SHiP > Emissary > CLIP ≈ TRRIP ≈ 0) is the reproduction target.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.config import KB, SimulatorConfig


@dataclass(frozen=True)
class MechanismOverhead:
    """Storage added by one replacement mechanism."""

    name: str
    storage_kb: float
    #: SRAM-equivalent kB standing in for added control/datapath logic.
    logic_equivalent_kb: float = 0.0

    @property
    def total_equivalent_kb(self) -> float:
        return self.storage_kb + self.logic_equivalent_kb


@dataclass(frozen=True)
class PowerAreaReport:
    """Static power and area overhead of one mechanism vs. SRRIP."""

    mechanism: str
    static_power_percent: float
    area_percent: float


class PowerAreaModel:
    """Analytical stand-in for the paper's McPAT 22 nm evaluation."""

    #: SRAM-equivalent size of the core's logic + register structures.  The
    #: value is calibrated so that a 64 kB predictor (SHiP) costs ~3% area and
    #: ~1.7% static power on the Table 1 configuration, matching Table 4.
    CORE_LOGIC_AREA_EQUIV_KB = 1500.0
    CORE_LOGIC_POWER_EQUIV_KB = 3100.0

    def __init__(self, config: SimulatorConfig | None = None) -> None:
        self.config = config or SimulatorConfig.paper()

    # -------------------------------------------------------------- baseline
    def _baseline_sram_kb(self) -> float:
        h = self.config.hierarchy
        on_chip = (h.l1i.size_bytes + h.l1d.size_bytes + h.l2.size_bytes) / KB
        # Tag arrays and cache control add roughly 10% on top of data arrays.
        return on_chip * 1.10

    def baseline_area_equivalent_kb(self) -> float:
        return self._baseline_sram_kb() + self.CORE_LOGIC_AREA_EQUIV_KB

    def baseline_power_equivalent_kb(self) -> float:
        return self._baseline_sram_kb() + self.CORE_LOGIC_POWER_EQUIV_KB

    # ------------------------------------------------------------ mechanisms
    def _cache_lines(self, size_bytes: int) -> int:
        return size_bytes // self.config.hierarchy.line_size

    def mechanism_overheads(self) -> dict[str, MechanismOverhead]:
        """Extra storage required by each evaluated mechanism."""
        h = self.config.hierarchy
        l1_lines = self._cache_lines(h.l1i.size_bytes) + self._cache_lines(
            h.l1d.size_bytes
        )
        l2_lines = self._cache_lines(h.l2.size_bytes)

        # Emissary: 2 priority bits per L1 and L2 line + starvation tracking.
        emissary_bits = 2 * (l1_lines + l2_lines)
        emissary = MechanismOverhead(
            name="emissary",
            storage_kb=emissary_bits / 8 / KB,
            logic_equivalent_kb=10.0,
        )

        # SHiP: 64 kB SHCT + 14-bit signature + 1 outcome bit per L2 line.
        ship_per_line_bits = 15 * l2_lines
        ship = MechanismOverhead(
            name="ship",
            storage_kb=64.0 + ship_per_line_bits / 8 / KB,
            logic_equivalent_kb=0.0,
        )

        zero = lambda name: MechanismOverhead(name=name, storage_kb=0.0)
        return {
            "trrip": zero("trrip"),
            "trrip-1": zero("trrip-1"),
            "trrip-2": zero("trrip-2"),
            "clip": zero("clip"),
            "emissary": emissary,
            "ship": ship,
            "srrip": zero("srrip"),
            "lru": zero("lru"),
            "drrip": MechanismOverhead(name="drrip", storage_kb=10 / 8 / KB),
            "brrip": zero("brrip"),
        }

    # --------------------------------------------------------------- reports
    def report(self, mechanism: str) -> PowerAreaReport:
        """Static power / area overhead of ``mechanism`` relative to SRRIP."""
        overheads = self.mechanism_overheads()
        key = mechanism.lower()
        if key not in overheads:
            raise KeyError(f"unknown mechanism {mechanism!r}")
        overhead = overheads[key]
        area = 100.0 * overhead.total_equivalent_kb / self.baseline_area_equivalent_kb()
        power = (
            100.0 * overhead.total_equivalent_kb / self.baseline_power_equivalent_kb()
        )
        return PowerAreaReport(
            mechanism=mechanism,
            static_power_percent=power,
            area_percent=area,
        )

    def table4(self) -> list[PowerAreaReport]:
        """The four mechanisms Table 4 lists, in paper order."""
        return [self.report(name) for name in ("trrip", "clip", "emissary", "ship")]
