"""Coverage of costly instruction misses by TRRIP's hot section (Figure 7).

Emissary defines *costly* instruction misses as the ones that starve decode.
TRRIP cannot see individual miss costs — it only knows what the compiler
marked hot — so Figure 7 asks: of the top-Nth-percentile costliest instruction
lines, how many fall inside TRRIP's ``.text.hot`` section?  Figure 7a counts
every costly line; Figure 7b excludes lines in external code (PLTs, other
libraries) that TRRIP's compiler never saw.

The per-line cost is the demand instruction-fetch stall attributed to that
line by the core model (``SimulationResult.line_stall_cycles``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

#: Percentiles Figure 7 sweeps.
DEFAULT_PERCENTILES: tuple[int, ...] = (50, 60, 70, 80, 90)


@dataclass(frozen=True)
class CoverageResult:
    """Coverage of costly lines by the hot section, per percentile."""

    benchmark: str
    exclude_external: bool
    coverage_percent: dict[int, float]
    costly_lines: int

    def coverage_at(self, percentile: int) -> float:
        return self.coverage_percent[percentile]


def _in_ranges(address: int, ranges: Sequence[tuple[int, int]]) -> bool:
    return any(start <= address < end for start, end in ranges)


def costly_miss_coverage(
    benchmark: str,
    line_costs: Mapping[int, float],
    hot_ranges: Sequence[tuple[int, int]],
    is_external: Callable[[int], bool] | None = None,
    percentiles: Iterable[int] = DEFAULT_PERCENTILES,
    exclude_external: bool = False,
) -> CoverageResult:
    """Compute Figure 7's coverage numbers for one benchmark.

    Parameters
    ----------
    line_costs:
        Virtual line address → accumulated demand ifetch stall cycles.
    hot_ranges:
        ``(start, end)`` virtual ranges of the ``.text.hot`` section(s).
    is_external:
        Predicate marking addresses in external (non-compiled) code.
    exclude_external:
        Figure 7b: drop external lines before ranking (they are outside the
        compiler's reach by construction).
    """
    percentiles = tuple(percentiles)
    costs = {
        line: cost for line, cost in line_costs.items() if cost > 0
    }
    if exclude_external and is_external is not None:
        costs = {line: cost for line, cost in costs.items() if not is_external(line)}

    if not costs:
        return CoverageResult(
            benchmark=benchmark,
            exclude_external=exclude_external,
            coverage_percent={p: 0.0 for p in percentiles},
            costly_lines=0,
        )

    lines = np.array(list(costs.keys()), dtype=np.int64)
    values = np.array(list(costs.values()), dtype=np.float64)
    coverage: dict[int, float] = {}
    for percentile in percentiles:
        threshold = np.percentile(values, percentile)
        selected = lines[values >= threshold]
        if selected.size == 0:
            coverage[percentile] = 0.0
            continue
        in_hot = sum(1 for line in selected.tolist() if _in_ranges(line, hot_ranges))
        coverage[percentile] = 100.0 * in_hot / selected.size
    return CoverageResult(
        benchmark=benchmark,
        exclude_external=exclude_external,
        coverage_percent=coverage,
        costly_lines=len(costs),
    )
