"""Analysis utilities: reuse distance, miss coverage, power/area modelling."""

from repro.analysis.coverage import (
    DEFAULT_PERCENTILES,
    CoverageResult,
    costly_miss_coverage,
)
from repro.analysis.power import (
    MechanismOverhead,
    PowerAreaModel,
    PowerAreaReport,
)
from repro.analysis.reuse import (
    REUSE_BUCKETS,
    ReuseDistanceTracker,
    ReuseHistogram,
    bucket_for_distance,
)

__all__ = [
    "ReuseDistanceTracker",
    "ReuseHistogram",
    "REUSE_BUCKETS",
    "bucket_for_distance",
    "CoverageResult",
    "costly_miss_coverage",
    "DEFAULT_PERCENTILES",
    "PowerAreaModel",
    "PowerAreaReport",
    "MechanismOverhead",
]
