"""Reuse-distance measurement at L2 cache-set granularity (Figure 3).

The paper measures, for every access to a *hot* instruction line in the L2,
how many unique cache lines mapped to the same set were touched since the
previous access to that line, and reports the distribution in four buckets
(0-4, 5-8, 9-16, 16+).  Two variants are reported per benchmark:

* the **base** measurement counts every unique line (instruction and data);
* the **hot-only** measurement (benchmarks post-fixed with "~") counts only
  unique *hot* lines, i.e. the temporal locality hot code would enjoy if
  non-hot lines never competed for the set.

The tracker is fed with every demand access that reaches the L2 (the
hierarchy's ``l2_access_observer`` hook) and never perturbs timing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.addressing import CACHE_LINE_SIZE, line_address
from repro.common.request import MemoryRequest
from repro.common.temperature import Temperature

#: Bucket labels in the order Figure 3 stacks them.
REUSE_BUCKETS: tuple[str, ...] = ("0-4", "5-8", "9-16", "16+")


def bucket_for_distance(distance: int) -> str:
    """Map a set-level reuse distance onto Figure 3's buckets."""
    if distance < 0:
        raise ValueError("reuse distance cannot be negative")
    if distance <= 4:
        return "0-4"
    if distance <= 8:
        return "5-8"
    if distance <= 16:
        return "9-16"
    return "16+"


@dataclass
class ReuseHistogram:
    """Counts of hot-line accesses per reuse-distance bucket."""

    counts: dict[str, int] = field(
        default_factory=lambda: {bucket: 0 for bucket in REUSE_BUCKETS}
    )

    def record(self, distance: int) -> None:
        self.counts[bucket_for_distance(distance)] += 1

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def fractions(self) -> dict[str, float]:
        total = self.total
        if total == 0:
            return {bucket: 0.0 for bucket in REUSE_BUCKETS}
        return {bucket: count / total for bucket, count in self.counts.items()}

    def fraction_at_least(self, bucket: str) -> float:
        """Fraction of accesses in ``bucket`` or any longer-distance bucket."""
        if bucket not in REUSE_BUCKETS:
            raise KeyError(f"unknown reuse bucket {bucket!r}")
        start = REUSE_BUCKETS.index(bucket)
        total = self.total
        if total == 0:
            return 0.0
        return sum(self.counts[b] for b in REUSE_BUCKETS[start:]) / total


class ReuseDistanceTracker:
    """Tracks per-set reuse distances of hot instruction lines in the L2."""

    def __init__(self, num_sets: int, line_size: int = CACHE_LINE_SIZE) -> None:
        if num_sets <= 0:
            raise ValueError("num_sets must be positive")
        self.num_sets = num_sets
        self.line_size = line_size
        #: Recency stacks (most recent first): one over all lines, one over
        #: hot lines only, per set.
        self._all_stacks: list[list[int]] = [[] for _ in range(num_sets)]
        self._hot_stacks: list[list[int]] = [[] for _ in range(num_sets)]
        self.base = ReuseHistogram()
        self.hot_only = ReuseHistogram()

    # ---------------------------------------------------------------- update
    def observe(self, request: MemoryRequest, hit: bool = True) -> None:
        """Record one demand L2 access (wired to the hierarchy observer)."""
        line = line_address(request.address, self.line_size)
        set_index = (line // self.line_size) % self.num_sets
        is_hot = (
            request.is_instruction and request.temperature is Temperature.HOT
        )
        self._touch(self._all_stacks[set_index], line, is_hot, self.base)
        if is_hot:
            self._touch(self._hot_stacks[set_index], line, True, self.hot_only)

    @staticmethod
    def _touch(
        stack: list[int], line: int, record: bool, histogram: ReuseHistogram
    ) -> None:
        try:
            position = stack.index(line)
        except ValueError:
            position = -1
        if position >= 0:
            stack.pop(position)
            if record:
                histogram.record(position)
        stack.insert(0, line)
        # Bound stack depth: distances beyond the 16+ bucket are equivalent.
        if len(stack) > 128:
            stack.pop()

    # ---------------------------------------------------------------- export
    def histograms(self) -> tuple[ReuseHistogram, ReuseHistogram]:
        """(base, hot-only) histograms, matching Figure 3's two bars."""
        return self.base, self.hot_only
