"""The :class:`Session` facade: plan, dedupe and execute simulation runs.

A session owns the execution context every run shares — default simulator
configuration, default pipeline options, an optional persistent
:class:`~repro.experiments.store.ResultStore`, a default worker count — and
turns declarative :class:`~repro.api.scenario.Scenario` objects into
results:

1. :meth:`Session.plan` expands scenarios into a deduplicated
   :class:`~repro.api.scenario.RunPlan` (free: no simulation happens);
2. :meth:`Session.execute` runs the plan's unique points through the
   store-aware :class:`~repro.experiments.runner.BenchmarkRunner` engine —
   serially, or fanned out over worker processes when the plan is uniform —
   and fans results back out to every requested point;
3. :meth:`Session.stream` / :meth:`Session.run` wrap both for the common
   call shapes.

Results come back as :class:`~repro.experiments.runner.RunArtifacts` in
deterministic plan order, bit-identical for every ``jobs`` value.  The
session keeps one engine runner per (configuration, pipeline-options) pair,
so prepared workloads and packed traces are shared across scenarios exactly
as they were across the old hand-written runner loops.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator, Optional, Sequence

from repro.api.scenario import (
    Benchmark,
    RunPlan,
    RunRequest,
    Scenario,
    build_plan,
    resolve_benchmark,
)
from repro.cache.replacement.spec import PolicySpec
from repro.common.errors import ConfigurationError
from repro.core.pipeline import PipelineOptions
from repro.sim.config import (
    BASELINE_POLICY,
    EVALUATED_POLICIES,
    SimulatorConfig,
)
from repro.sim.simulator import ENGINES
from repro.workloads.capture import TraceArchive
from repro.workloads.spec import PROXY_BENCHMARK_NAMES

if TYPE_CHECKING:  # engine types; imported lazily at runtime (see below)
    from repro.experiments.runner import BenchmarkRunner, RunArtifacts
    from repro.experiments.store import ResultStore
    from repro.experiments.sweep import PolicySweepResult

# The engine lives in repro.experiments, whose experiment modules import
# this API package at module level; importing the engine lazily keeps the
# layering acyclic (api -> engine only at call time).


class Session:
    """Shared execution context for declarative simulation runs."""

    def __init__(
        self,
        config: Optional[SimulatorConfig] = None,
        store: Optional[ResultStore] = None,
        options: Optional[PipelineOptions] = None,
        jobs: Optional[int] = None,
        traces: "Optional[TraceArchive | str]" = None,
        lockstep: bool = True,
        engine: str = "auto",
    ) -> None:
        self.config = config or SimulatorConfig.default()
        self.config.validate()
        if engine not in ENGINES:
            raise ConfigurationError(
                f"unknown engine {engine!r}; expected one of {ENGINES}"
            )
        self.store = store
        self.options = options or PipelineOptions()
        #: Default worker count for plan execution (``None``/1 = serial,
        #: 0 = all cores); per-call ``jobs`` arguments override it.
        self.jobs = jobs
        #: Optional trace capture/replay archive shared by every engine this
        #: session creates (a directory path is coerced to an archive).
        if traces is not None and not isinstance(traces, TraceArchive):
            traces = TraceArchive(traces)
        self.traces = traces
        #: When executing a plan serially, runs that share (workload, config,
        #: pipeline options) and differ only in their L2 policy advance
        #: through one lockstep replay instead of N independent ones
        #: (bit-identical results; see
        #: :meth:`~repro.experiments.runner.BenchmarkRunner.run_lockstep_resolved`).
        self.lockstep = lockstep
        #: Packed-trace replay engine every runner this session creates uses
        #: (``"scalar"``, ``"vector"`` or ``"auto"``).  Results are
        #: bit-identical across engines — the knob never enters store keys or
        #: runner identity, so cached results are shared freely between
        #: engine choices; only replay speed (and, for ``"vector"``, the
        #: strictness of refusing unbatchable configurations) changes.
        self.engine = engine
        self._runners: dict[tuple, BenchmarkRunner] = {}

    @classmethod
    def ensure(
        cls,
        session: "Optional[Session]" = None,
        *,
        runner: Optional[BenchmarkRunner] = None,
        config: Optional[SimulatorConfig] = None,
        store: Optional[ResultStore] = None,
        jobs: Optional[int] = None,
    ) -> "Session":
        """Coerce legacy call shapes into a session.

        Experiment entry points accept ``session=``, but also still accept
        the historical ``runner=``/``config=`` arguments; this adopts an
        existing engine runner (sharing its caches and store) or builds a
        fresh session around the given configuration.
        """
        if session is not None:
            return session
        if runner is not None:
            session = cls(
                config=runner.config,
                store=runner.store,
                options=runner.pipeline_options,
                jobs=jobs,
                traces=runner.trace_archive,
                engine=runner.engine,
            )
            session._runners[
                session._runner_key(runner.config, runner.pipeline_options)
            ] = runner
            return session
        return cls(config=config, store=store, jobs=jobs)

    # ---------------------------------------------------------------- engines
    @staticmethod
    def _runner_key(config: SimulatorConfig, options: PipelineOptions) -> tuple:
        return (config.content_hash(), options.cache_key())

    def runner_for(
        self,
        config: Optional[SimulatorConfig] = None,
        options: Optional[PipelineOptions] = None,
    ) -> BenchmarkRunner:
        """The engine runner for a (config, options) pair, created on first
        use and cached so prepared workloads/traces are shared."""
        from repro.experiments.runner import BenchmarkRunner

        run_config = config or self.config
        run_options = options or self.options
        key = self._runner_key(run_config, run_options)
        runner = self._runners.get(key)
        if runner is None:
            runner = BenchmarkRunner(
                config=run_config,
                pipeline_options=run_options,
                store=self.store,
                trace_archive=self.traces,
                engine=self.engine,
            )
            self._runners[key] = runner
        return runner

    @property
    def runner(self) -> BenchmarkRunner:
        """The engine runner for the session's default config and options."""
        return self.runner_for()

    @property
    def simulations_run(self) -> int:
        """Simulations actually executed (store hits excluded), all engines."""
        return sum(runner.simulations_run for runner in self._runners.values())

    # ------------------------------------------------------------------ plans
    def plan(self, *scenarios: Scenario) -> RunPlan:
        """Expand scenarios into a deduplicated plan (no simulation)."""
        return build_plan(scenarios, config=self.config, options=self.options)

    def execute(
        self, plan: RunPlan, jobs: Optional[int] = None
    ) -> list[RunArtifacts]:
        """Execute a plan; results align 1:1 with ``plan.requests``."""
        unique = self._execute_unique(plan, jobs)
        return [unique[index] for index in plan.indices]

    def run(
        self, *scenarios: Scenario, jobs: Optional[int] = None
    ) -> list[RunArtifacts]:
        """Plan and execute scenarios in one call."""
        return self.execute(self.plan(*scenarios), jobs=jobs)

    def stream(
        self, *scenarios: Scenario, jobs: Optional[int] = None
    ) -> Iterator[tuple[RunRequest, RunArtifacts]]:
        """Yield ``(request, artifacts)`` pairs in deterministic plan order.

        With parallel execution the whole plan completes first; serially,
        each point is yielded as soon as it (or its deduplicated original)
        finishes.
        """
        plan = self.plan(*scenarios)
        jobs = self.jobs if jobs is None else jobs
        if jobs is not None and jobs != 1:  # 0 = all cores, like the engine
            yield from zip(plan.requests, self.execute(plan, jobs=jobs))
            return
        done: dict[int, RunArtifacts] = {}
        for request, index in zip(plan.requests, plan.indices):
            if index not in done:
                done[index] = self._run_request(plan.unique[index])
            yield request, done[index]

    # -------------------------------------------------------------- execution
    def _run_request(self, request: RunRequest) -> RunArtifacts:
        runner = self.runner_for(request.config, request.options)
        if request.is_multicore:
            return runner.run_cores_resolved(
                request.cores,
                request.policy,
                options=request.options,
                interleave=request.interleave,
            )
        return runner.run_resolved(
            request.spec,
            request.policy,
            options=request.options,
            track_reuse=request.track_reuse,
        )

    def _execute_unique(
        self, plan: RunPlan, jobs: Optional[int]
    ) -> list[RunArtifacts]:
        unique = plan.unique
        jobs = self.jobs if jobs is None else jobs
        if jobs is not None and jobs != 1 and len(unique) > 1:
            uniform = (
                not any(request.track_reuse for request in unique)
                # Multi-core points run solo-serial: each one already owns
                # its cores' replay, and serial/pool parity is trivially
                # deterministic because the pool path never touches them.
                and not any(request.is_multicore for request in unique)
                and len(
                    {
                        self._runner_key(request.config, request.options)
                        for request in unique
                    }
                )
                == 1
            )
            if uniform:
                from repro.experiments.runner import RunArtifacts

                runner = self.runner_for(unique[0].config, unique[0].options)
                # Hand each worker a contiguous same-workload stretch so its
                # process-level prepare/trace caches amortise across points.
                chunk = 1
                while chunk < len(unique) and unique[chunk].spec == unique[0].spec:
                    chunk += 1
                results = runner.run_points(
                    [(request.spec, request.policy) for request in unique],
                    jobs=jobs,
                    chunksize=chunk,
                )
                # Re-prepare locally (cheap, deterministic, runner-cached) so
                # parallel artifacts look exactly like store-served ones.
                return [
                    RunArtifacts(
                        result=result,
                        prepared=runner._prepare_resolved(
                            request.spec, request.options
                        ),
                    )
                    for request, result in zip(unique, results)
                ]
        return self._execute_serial(unique)

    def _execute_serial(self, unique: list[RunRequest]) -> list[RunArtifacts]:
        """Serial plan execution with lockstep multi-policy grouping.

        Unique requests that share (workload, config, pipeline options) and
        differ only in their L2 policy — the shape of every figure sweep —
        are replayed in lockstep: the trace is decoded once and the N
        hierarchies advance together.  Reuse-tracking points always run
        solo (the L2 observer hooks one hierarchy at a time).  Results are
        bit-identical to point-by-point execution for any grouping.

        Lockstep replay is the scalar loop, so a forced ``engine="vector"``
        session skips the grouping and runs every point solo through the
        vector kernel instead.
        """
        if not self.lockstep or self.engine == "vector":
            return [self._run_request(request) for request in unique]
        groups: dict[tuple, list[int]] = {}
        for index, request in enumerate(unique):
            if request.track_reuse or request.is_multicore:
                group_key = ("solo", index)
            else:
                group_key = (
                    "lockstep",
                    request.spec,
                    request.config.content_hash(),
                    request.options.cache_key(),
                )
            groups.setdefault(group_key, []).append(index)
        results: list[Optional[RunArtifacts]] = [None] * len(unique)
        for group_key, indices in groups.items():
            if group_key[0] == "solo" or len(indices) == 1:
                for index in indices:
                    results[index] = self._run_request(unique[index])
                continue
            first = unique[indices[0]]
            runner = self.runner_for(first.config, first.options)
            artifacts = runner.run_lockstep_resolved(
                first.spec,
                [unique[index].policy for index in indices],
                options=first.options,
                config=first.config,
            )
            for index, artifact in zip(indices, artifacts):
                results[index] = artifact
        return results

    # ---------------------------------------------------------- conveniences
    def run_one(
        self,
        benchmark: Benchmark,
        policy: str | PolicySpec = BASELINE_POLICY,
        *,
        options: Optional[PipelineOptions] = None,
        config: Optional[SimulatorConfig] = None,
        track_reuse: bool = False,
    ) -> RunArtifacts:
        """Simulate a single (benchmark, policy) point."""
        run_config = config or self.config
        run_options = options or self.options
        request = RunRequest(
            spec=resolve_benchmark(benchmark, run_config),
            policy=PolicySpec.of(policy),
            config=run_config,
            options=run_options,
            track_reuse=track_reuse,
        )
        return self._run_request(request)

    def sweep(
        self,
        benchmarks: Optional[Sequence[Benchmark]] = None,
        policies: Optional[Iterable[str | PolicySpec]] = None,
        baseline: str | PolicySpec = BASELINE_POLICY,
        config: Optional[SimulatorConfig] = None,
        jobs: Optional[int] = None,
    ) -> PolicySweepResult:
        """Simulate a (benchmark x policy) grid against a baseline.

        The grid runs benchmark-major with the baseline first within each
        benchmark — the order (and therefore the exact result contents) of
        the historical serial sweep loop, for every ``jobs`` value.
        """
        from repro.experiments.sweep import PolicySweepResult

        run_config = config or self.config
        wanted_policies = tuple(
            PolicySpec.of(p) for p in (policies or EVALUATED_POLICIES)
        )
        baseline = PolicySpec.of(baseline)
        wanted_benchmarks = list(benchmarks or PROXY_BENCHMARK_NAMES)
        runner = self.runner_for(run_config)
        sweep = PolicySweepResult(
            benchmarks=tuple(
                resolve_benchmark(b, run_config).name for b in wanted_benchmarks
            ),
            policies=tuple(p.canonical() for p in wanted_policies),
            baseline_policy=baseline.canonical(),
        )
        ordered = [baseline] + [p for p in wanted_policies if p != baseline]
        grid = runner.run_grid(
            wanted_benchmarks,
            ordered,
            config=run_config,
            jobs=self.jobs if jobs is None else jobs,
        )
        for benchmark, policy, result in grid:
            sweep.results.setdefault(benchmark, {})[policy] = result
        return sweep

    def sweep_checkpointed(
        self,
        benchmarks: Optional[Sequence[Benchmark]] = None,
        policies: Optional[Iterable[str | PolicySpec]] = None,
        baseline: str | PolicySpec = BASELINE_POLICY,
        config: Optional[SimulatorConfig] = None,
        jobs: Optional[int] = None,
        supervision=None,
        resume: bool = False,
    ):
        """Fault-tolerant :meth:`sweep`: checkpointed, supervised, resumable.

        The grid is expanded into a hashed
        :class:`~repro.experiments.sweep.SweepManifest`; units already in
        the result store are served from it, the rest run in supervised
        worker processes with the given
        :class:`~repro.experiments.supervisor.SupervisionPolicy` (retries,
        timeouts, backoff), journalled to
        ``<store>/journals/<manifest>.jsonl``.  ``resume=True`` requires a
        prior journal for the same manifest and executes only the missing
        units.  Returns a
        :class:`~repro.experiments.sweep.CheckpointedSweep`; failures and
        interruptions are reported structurally, never raised mid-sweep.
        Unit order — hence store contents and sweep results — matches
        :meth:`sweep` exactly.
        """
        from repro.experiments.sweep import build_manifest, execute_checkpointed

        run_config = config or self.config
        manifest = build_manifest(
            benchmarks=list(benchmarks or PROXY_BENCHMARK_NAMES),
            policies=list(policies or EVALUATED_POLICIES),
            baseline=baseline,
            config=run_config,
            options=self.options,
        )
        return execute_checkpointed(
            self.runner_for(run_config),
            manifest,
            jobs=self.jobs if jobs is None else jobs,
            supervision=supervision,
            resume=resume,
        )
