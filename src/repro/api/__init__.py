"""Declarative run layer: one front door for every simulation in the repo.

The historical entry points — raw :class:`~repro.sim.simulator.SystemSimulator`
driving, :class:`~repro.experiments.runner.BenchmarkRunner` call sequences,
and the registry/CLI glue — still exist as the engine underneath, but every
figure, table, ablation, benchmark and CLI command now runs through two
objects defined here:

* :class:`~repro.api.scenario.Scenario` — a declarative description of what
  to simulate: workloads (names, specs or mixes of both), structured
  :class:`~repro.cache.replacement.spec.PolicySpec` policies, simulator
  configuration, pipeline options, warmup/measure phase overrides and
  analysis options (reuse tracking).
* :class:`~repro.api.session.Session` — the facade that expands scenario
  grids into a deduplicated :class:`~repro.api.scenario.RunPlan`, executes
  it through the store-aware (optionally parallel) engine, and streams
  :class:`~repro.experiments.runner.RunArtifacts` back in deterministic
  order.

Quickstart::

    from repro.api import PolicySpec, Scenario, Session

    session = Session()                       # scaled config, no store
    scenario = Scenario(
        benchmarks=("sqlite", "gcc"),
        policies=("srrip", "trrip-1", PolicySpec.parse("ship:shct_bits=3")),
    )
    for request, artifacts in session.stream(scenario):
        print(request.benchmark, request.policy, artifacts.result.ipc)
"""

from repro.api.scenario import RunPlan, RunRequest, Scenario
from repro.api.session import Session
from repro.cache.replacement.spec import (
    POLICY_REGISTRY,
    PolicyInfo,
    PolicyParam,
    PolicySpec,
    describe_policies,
    get_policy_info,
    policy_names,
)
from repro.experiments.runner import RunArtifacts
from repro.workloads.capture import TraceArchive
from repro.workloads.families import (
    WORKLOAD_FAMILIES,
    WorkloadFamilySpec,
    describe_families,
    family_names,
    get_family_info,
)

__all__ = [
    "Scenario",
    "Session",
    "RunPlan",
    "RunRequest",
    "RunArtifacts",
    "PolicySpec",
    "PolicyInfo",
    "PolicyParam",
    "POLICY_REGISTRY",
    "policy_names",
    "get_policy_info",
    "describe_policies",
    "WorkloadFamilySpec",
    "WORKLOAD_FAMILIES",
    "family_names",
    "get_family_info",
    "describe_families",
    "TraceArchive",
]
