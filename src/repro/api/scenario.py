"""Declarative simulation scenarios and their expansion into run plans.

A :class:`Scenario` says *what* to simulate — workloads, policies,
configuration, pipeline options, phase lengths, analysis side-products —
without saying how.  :meth:`Scenario.expand` turns it into concrete
:class:`RunRequest` points (benchmark-major, policy-minor: the order every
figure in the paper uses), and :func:`build_plan` folds any number of
scenarios into one :class:`RunPlan` whose duplicate points — the same
(workload, policy, config, options, analysis) coordinate reached from
different scenarios — are executed exactly once.

Everything here is plain data: expansion needs no
:class:`~repro.experiments.runner.BenchmarkRunner`, no store and no
simulator, so plans can be built, inspected and counted for free (the CLI
and the tests do exactly that).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, Union

from repro.cache.replacement.spec import PolicySpec
from repro.common.errors import ConfigurationError
from repro.core.pipeline import PipelineOptions
from repro.sim.config import BASELINE_POLICY, SimulatorConfig
from repro.workloads.families import WorkloadFamilySpec, resolve_workload
from repro.workloads.spec import WorkloadSpec, resolve_spec

#: Anything accepted as a workload: a catalog name, a workload-family token
#: (``"zipf:alpha=1.2"``), a family spec or a full workload spec.
Benchmark = Union[str, WorkloadSpec, WorkloadFamilySpec]


def resolve_benchmark(benchmark: Benchmark, config: SimulatorConfig) -> WorkloadSpec:
    """Resolve a benchmark name/family/spec and apply the config's scale.

    Family tokens and :class:`~repro.workloads.families.WorkloadFamilySpec`
    objects synthesize first (:func:`~repro.workloads.families.resolve_workload`),
    then delegate to :func:`repro.workloads.spec.resolve_spec` — the one
    implementation of the scale-exactly-once rule — so downstream execution
    always receives resolved specs.
    """
    return resolve_spec(resolve_workload(benchmark), config.workload_scale)


@dataclass(frozen=True, eq=False)
class RunRequest:
    """One fully-resolved simulation point of a plan.

    ``spec`` is already config-scaled and phase-adjusted; ``config`` is the
    *base* simulator configuration (the engine applies ``policy`` to its L2
    when the point executes).
    """

    spec: WorkloadSpec
    policy: PolicySpec
    config: SimulatorConfig
    options: PipelineOptions
    track_reuse: bool = False

    @property
    def benchmark(self) -> str:
        return self.spec.name

    def key(self) -> tuple:
        """Hashable dedup/equality coordinate of this point.

        Two requests with equal keys are served by one simulation: the
        result is fully determined by (spec, policy, config, options), and
        reuse tracking only adds a side product.
        """
        return (
            self.spec,
            self.policy,
            self.config.content_hash(),
            self.options.cache_key(),
            self.track_reuse,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RunRequest({self.spec.name!r}, {self.policy.canonical()!r}, "
            f"config={self.config.name!r})"
        )


def _as_tuple(value, scalar_types: tuple) -> tuple:
    if value is None:
        return ()
    if isinstance(value, scalar_types):
        return (value,)
    return tuple(value)


@dataclass(frozen=True, eq=False)
class Scenario:
    """A declarative description of a family of simulation runs.

    Parameters
    ----------
    benchmarks:
        One workload or a mix of them — catalog names (``"sqlite"``) and
        full :class:`~repro.workloads.spec.WorkloadSpec` objects can be
        freely combined.
    policies:
        One or more replacement policies: names, CLI tokens
        (``"ship:shct_bits=3"``) or :class:`PolicySpec` objects.  Defaults
        to the SRRIP baseline.
    config:
        Simulator configuration for every point of this scenario; ``None``
        defers to the executing session's default.
    options:
        Compile/load-time :class:`~repro.core.pipeline.PipelineOptions`;
        ``None`` defers to the session default.
    warmup_instructions / measure_instructions:
        Phase-length overrides applied to each resolved workload spec
        (after config scaling); ``None`` keeps the spec's own windows.
    track_reuse:
        Collect reuse-distance histograms (Figure 3 analysis) per point.
    label:
        Free-form tag carried through for reporting.
    """

    benchmarks: Sequence[Benchmark] | Benchmark = ()
    policies: Sequence[str | PolicySpec] | str | PolicySpec = (BASELINE_POLICY,)
    config: Optional[SimulatorConfig] = None
    options: Optional[PipelineOptions] = None
    warmup_instructions: Optional[int] = None
    measure_instructions: Optional[int] = None
    track_reuse: bool = False
    label: str = ""

    def __post_init__(self) -> None:
        benchmarks = _as_tuple(
            self.benchmarks, (str, WorkloadSpec, WorkloadFamilySpec)
        )
        if not benchmarks:
            raise ConfigurationError(
                "a Scenario needs at least one benchmark (the workload axis "
                "is empty)"
            )
        policies = tuple(
            PolicySpec.of(p) for p in _as_tuple(self.policies, (str, PolicySpec))
        )
        if not policies:
            raise ConfigurationError("a Scenario needs at least one policy")
        object.__setattr__(self, "benchmarks", benchmarks)
        object.__setattr__(self, "policies", policies)

    # ------------------------------------------------------------- expansion
    @property
    def size(self) -> int:
        """Number of grid points this scenario expands to."""
        return len(self.benchmarks) * len(self.policies)

    def expand(
        self,
        config: Optional[SimulatorConfig] = None,
        options: Optional[PipelineOptions] = None,
    ) -> list[RunRequest]:
        """Concrete (benchmark-major, policy-minor) run requests.

        ``config``/``options`` fill in for fields the scenario left as
        ``None`` (the session passes its defaults here).
        """
        run_config = self.config or config or SimulatorConfig.default()
        run_options = self.options or options or PipelineOptions()
        requests: list[RunRequest] = []
        for benchmark in self.benchmarks:
            spec = resolve_benchmark(benchmark, run_config)
            overrides = {}
            if self.warmup_instructions is not None:
                overrides["warmup_instructions"] = self.warmup_instructions
            if self.measure_instructions is not None:
                overrides["eval_instructions"] = self.measure_instructions
            if overrides:
                spec = dataclasses.replace(spec, **overrides)
            for policy in self.policies:
                requests.append(
                    RunRequest(
                        spec=spec,
                        policy=policy,
                        config=run_config,
                        options=run_options,
                        track_reuse=self.track_reuse,
                    )
                )
        return requests


@dataclass
class RunPlan:
    """A deduplicated, deterministically-ordered batch of run requests.

    ``requests`` preserves the full scenario order (including duplicates);
    ``unique`` holds each distinct coordinate once, in first-appearance
    order, and ``indices[i]`` maps ``requests[i]`` to its entry in
    ``unique``.  Execution simulates ``unique`` and fans results back out.
    """

    requests: list[RunRequest] = field(default_factory=list)
    unique: list[RunRequest] = field(default_factory=list)
    indices: list[int] = field(default_factory=list)

    @property
    def total_runs(self) -> int:
        return len(self.requests)

    @property
    def unique_runs(self) -> int:
        return len(self.unique)

    @property
    def deduplicated(self) -> int:
        """How many requested points are served by an earlier identical one."""
        return len(self.requests) - len(self.unique)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RunPlan({self.total_runs} runs, {self.unique_runs} unique, "
            f"{self.deduplicated} deduplicated)"
        )


def build_plan(
    scenarios: Iterable[Scenario],
    config: Optional[SimulatorConfig] = None,
    options: Optional[PipelineOptions] = None,
) -> RunPlan:
    """Expand scenarios and fold identical points into one plan.

    Zero scenarios would silently produce a 0-run plan that every downstream
    consumer (``Session.execute``, ``Session.stream``) happily executes as a
    no-op; that is never what a caller meant, so it raises eagerly instead.
    """
    scenarios = tuple(scenarios)
    if not scenarios:
        raise ConfigurationError(
            "cannot build a run plan from zero scenarios (the scenario axis "
            "is empty)"
        )
    plan = RunPlan()
    seen: dict[tuple, int] = {}
    for scenario in scenarios:
        for request in scenario.expand(config=config, options=options):
            key = request.key()
            index = seen.get(key)
            if index is None:
                index = len(plan.unique)
                seen[key] = index
                plan.unique.append(request)
            plan.requests.append(request)
            plan.indices.append(index)
    return plan
