"""Declarative simulation scenarios and their expansion into run plans.

A :class:`Scenario` says *what* to simulate — workloads, policies,
configuration, pipeline options, phase lengths, analysis side-products —
without saying how.  :meth:`Scenario.expand` turns it into concrete
:class:`RunRequest` points (benchmark-major, policy-minor: the order every
figure in the paper uses), and :func:`build_plan` folds any number of
scenarios into one :class:`RunPlan` whose duplicate points — the same
(workload, policy, config, options, analysis) coordinate reached from
different scenarios — are executed exactly once.

Everything here is plain data: expansion needs no
:class:`~repro.experiments.runner.BenchmarkRunner`, no store and no
simulator, so plans can be built, inspected and counted for free (the CLI
and the tests do exactly that).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, Union

from repro.cache.replacement.spec import PolicySpec
from repro.common.errors import ConfigurationError, ReproError
from repro.core.pipeline import PipelineOptions
from repro.sim.config import BASELINE_POLICY, SimulatorConfig, named_config
from repro.sim.multicore import normalize_interleave
from repro.workloads.families import WorkloadFamilySpec, resolve_workload
from repro.workloads.spec import WorkloadSpec, resolve_spec, tiny_spec

#: Wire-format version understood by :meth:`Scenario.from_dict`.  Bump when
#: the payload shape changes incompatibly; consumers reject other versions.
SCENARIO_SCHEMA_VERSION = 1

#: Shorthand accepted anywhere a workload token is: a deterministic,
#: seconds-fast synthetic benchmark (CI smokes, protocol tests).
TINY_TOKEN = "tiny"

#: Every key :meth:`Scenario.from_dict` accepts; anything else is rejected so
#: typos fail loudly instead of silently simulating the default.
_SCENARIO_FIELDS = (
    "v",
    "benchmarks",
    "cores",
    "interleave",
    "policies",
    "config",
    "warmup_instructions",
    "measure_instructions",
    "track_reuse",
    "label",
)

#: Anything accepted as a workload: a catalog name, a workload-family token
#: (``"zipf:alpha=1.2"``), a family spec or a full workload spec.
Benchmark = Union[str, WorkloadSpec, WorkloadFamilySpec]


def resolve_benchmark(benchmark: Benchmark, config: SimulatorConfig) -> WorkloadSpec:
    """Resolve a benchmark name/family/spec and apply the config's scale.

    Family tokens and :class:`~repro.workloads.families.WorkloadFamilySpec`
    objects synthesize first (:func:`~repro.workloads.families.resolve_workload`),
    then delegate to :func:`repro.workloads.spec.resolve_spec` — the one
    implementation of the scale-exactly-once rule — so downstream execution
    always receives resolved specs.  The ``"tiny"`` shorthand resolves here
    too, so it works anywhere a workload token does.
    """
    if benchmark == TINY_TOKEN:
        benchmark = tiny_spec()
    return resolve_spec(resolve_workload(benchmark), config.workload_scale)


@dataclass(frozen=True, eq=False)
class RunRequest:
    """One fully-resolved simulation point of a plan.

    ``spec`` is already config-scaled and phase-adjusted; ``config`` is the
    *base* simulator configuration (the engine applies ``policy`` to its L2
    when the point executes).
    """

    spec: WorkloadSpec
    policy: PolicySpec
    config: SimulatorConfig
    options: PipelineOptions
    track_reuse: bool = False
    #: Multi-core mode: per-core resolved specs (``spec`` aliases core 0) and
    #: the interleave quanta, both empty for single-core points.
    cores: tuple[WorkloadSpec, ...] = ()
    interleave: tuple[int, ...] = ()

    @property
    def is_multicore(self) -> bool:
        return bool(self.cores)

    @property
    def benchmark(self) -> str:
        if self.cores:
            return "+".join(spec.name for spec in self.cores)
        return self.spec.name

    def key(self) -> tuple:
        """Hashable dedup/equality coordinate of this point.

        Two requests with equal keys are served by one simulation: the
        result is fully determined by (spec, policy, config, options) — plus
        the core list and interleave ratio in multi-core mode — and reuse
        tracking only adds a side product.
        """
        return (
            self.spec,
            self.policy,
            self.config.content_hash(),
            self.options.cache_key(),
            self.track_reuse,
            self.cores,
            self.interleave,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RunRequest({self.benchmark!r}, {self.policy.canonical()!r}, "
            f"config={self.config.name!r})"
        )


def _as_tuple(value, scalar_types: tuple) -> tuple:
    if value is None:
        return ()
    if isinstance(value, scalar_types):
        return (value,)
    return tuple(value)


def _token_error(message: str, token: str) -> ConfigurationError:
    """A :class:`ConfigurationError` carrying the offending wire token.

    The server surfaces ``error.token`` in its HTTP 400 bodies so clients
    see *which* submitted token was rejected, not just a prose message.
    """
    error = ConfigurationError(message)
    error.token = token
    return error


def _token_list(payload: dict, name: str) -> tuple[str, ...]:
    """A wire field that must be a list of strings (absent/null = empty)."""
    value = payload.get(name)
    if value is None:
        return ()
    if isinstance(value, str):
        value = [value]
    if not isinstance(value, (list, tuple)) or not all(
        isinstance(item, str) for item in value
    ):
        raise ConfigurationError(f"{name} must be a list of strings")
    return tuple(value)


def resolve_token(token: str) -> Benchmark:
    """Validate one wire workload token, returning the scenario-level form.

    Tokens stay tokens (expansion re-resolves them against the executing
    configuration's workload scale); only the ``"tiny"`` shorthand resolves
    to its concrete spec here, since it has no catalog entry.
    """
    if token == TINY_TOKEN:
        return tiny_spec()
    try:
        resolve_workload(token)
    except ReproError as error:
        raise _token_error(str(error), token) from error
    return token


def _resolve_policy_token(token: "str | PolicySpec") -> PolicySpec:
    """Validate one wire policy token, attaching it to rejection errors."""
    try:
        return PolicySpec.of(token)
    except ReproError as error:
        raise _token_error(str(error), str(token)) from error


def _workload_token(benchmark: Benchmark) -> str:
    """The wire token of one scenario workload (inverse of
    :func:`resolve_token`)."""
    if isinstance(benchmark, str):
        return benchmark
    if isinstance(benchmark, WorkloadFamilySpec):
        return benchmark.canonical()
    if isinstance(benchmark, WorkloadSpec):
        if benchmark.name == tiny_spec().name:
            return TINY_TOKEN
        from repro.workloads.spec import PROXY_BENCHMARKS, SYSTEM_COMPONENTS

        if benchmark.name in PROXY_BENCHMARKS or benchmark.name in SYSTEM_COMPONENTS:
            return benchmark.name
        raise ConfigurationError(
            f"workload spec {benchmark.name!r} has no token form; scenario "
            "wire payloads carry catalog names, family tokens or 'tiny'"
        )
    raise ConfigurationError(
        f"cannot serialise {benchmark!r} as a workload token"
    )


@dataclass(frozen=True, eq=False)
class Scenario:
    """A declarative description of a family of simulation runs.

    Parameters
    ----------
    benchmarks:
        One workload or a mix of them — catalog names (``"sqlite"``) and
        full :class:`~repro.workloads.spec.WorkloadSpec` objects can be
        freely combined.  Mutually exclusive with ``cores``.
    cores:
        Multi-core mode: one workload *per core* (same token forms as
        ``benchmarks``), replayed as N independent streams interleaved over
        one shared L2/SLC.  A one-entry core list normalises to the
        equivalent single-core scenario, so its store keys and results are
        byte-identical to the legacy path.
    interleave:
        Instructions each core advances per scheduler turn (one positive
        integer per core); empty means plain round-robin.  Only meaningful
        with ``cores``.
    policies:
        One or more replacement policies: names, CLI tokens
        (``"ship:shct_bits=3"``) or :class:`PolicySpec` objects.  Defaults
        to the SRRIP baseline.
    config:
        Simulator configuration for every point of this scenario; ``None``
        defers to the executing session's default.
    options:
        Compile/load-time :class:`~repro.core.pipeline.PipelineOptions`;
        ``None`` defers to the session default.
    warmup_instructions / measure_instructions:
        Phase-length overrides applied to each resolved workload spec
        (after config scaling); ``None`` keeps the spec's own windows.
    track_reuse:
        Collect reuse-distance histograms (Figure 3 analysis) per point.
    label:
        Free-form tag carried through for reporting.
    """

    benchmarks: Sequence[Benchmark] | Benchmark = ()
    policies: Sequence[str | PolicySpec] | str | PolicySpec = (BASELINE_POLICY,)
    config: Optional[SimulatorConfig] = None
    options: Optional[PipelineOptions] = None
    warmup_instructions: Optional[int] = None
    measure_instructions: Optional[int] = None
    track_reuse: bool = False
    label: str = ""
    cores: Sequence[Benchmark] | Benchmark = ()
    interleave: Sequence[int] = ()

    def __post_init__(self) -> None:
        benchmarks = _as_tuple(
            self.benchmarks, (str, WorkloadSpec, WorkloadFamilySpec)
        )
        cores = _as_tuple(self.cores, (str, WorkloadSpec, WorkloadFamilySpec))
        interleave = tuple(int(value) for value in _as_tuple(self.interleave, (int,)))
        if benchmarks and cores:
            raise ConfigurationError(
                "a Scenario takes either benchmarks (single-core) or cores "
                "(multi-core), not both"
            )
        if interleave and not cores:
            raise ConfigurationError(
                "interleave is only meaningful with cores"
            )
        if cores:
            if self.track_reuse:
                raise ConfigurationError(
                    "reuse tracking is a single-core analysis; it cannot be "
                    "combined with cores"
                )
            # Validates length and positivity; the normalised ratio is
            # recomputed at expansion so a one-core scenario can drop it.
            normalize_interleave(interleave, len(cores))
        if len(cores) == 1:
            # One core over the shared hierarchy is exactly the legacy
            # single-core run (pinned by tests), so normalise eagerly: the
            # scenario then expands, hashes and stores via the legacy path.
            benchmarks, cores, interleave = (cores[0],), (), ()
        if not benchmarks and not cores:
            raise ConfigurationError(
                "a Scenario needs at least one benchmark (the workload axis "
                "is empty)"
            )
        policies = tuple(
            PolicySpec.of(p) for p in _as_tuple(self.policies, (str, PolicySpec))
        )
        if not policies:
            raise ConfigurationError("a Scenario needs at least one policy")
        object.__setattr__(self, "benchmarks", benchmarks)
        object.__setattr__(self, "policies", policies)
        object.__setattr__(self, "cores", cores)
        object.__setattr__(self, "interleave", interleave)

    # ------------------------------------------------------------- expansion
    @property
    def is_multicore(self) -> bool:
        return bool(self.cores)

    @property
    def size(self) -> int:
        """Number of grid points this scenario expands to."""
        if self.cores:
            return len(self.policies)
        return len(self.benchmarks) * len(self.policies)

    def expand(
        self,
        config: Optional[SimulatorConfig] = None,
        options: Optional[PipelineOptions] = None,
    ) -> list[RunRequest]:
        """Concrete (benchmark-major, policy-minor) run requests.

        ``config``/``options`` fill in for fields the scenario left as
        ``None`` (the session passes its defaults here).  A multi-core
        scenario expands to one request per policy, carrying the resolved
        per-core specs and normalised interleave ratio.
        """
        run_config = self.config or config or SimulatorConfig.default()
        run_options = self.options or options or PipelineOptions()
        requests: list[RunRequest] = []
        if self.cores:
            specs = tuple(
                self._phase_adjusted(resolve_benchmark(core, run_config))
                for core in self.cores
            )
            ratio = normalize_interleave(self.interleave, len(specs))
            for policy in self.policies:
                requests.append(
                    RunRequest(
                        spec=specs[0],
                        policy=policy,
                        config=run_config,
                        options=run_options,
                        cores=specs,
                        interleave=ratio,
                    )
                )
            return requests
        for benchmark in self.benchmarks:
            spec = self._phase_adjusted(resolve_benchmark(benchmark, run_config))
            for policy in self.policies:
                requests.append(
                    RunRequest(
                        spec=spec,
                        policy=policy,
                        config=run_config,
                        options=run_options,
                        track_reuse=self.track_reuse,
                    )
                )
        return requests

    def _phase_adjusted(self, spec: WorkloadSpec) -> WorkloadSpec:
        """Apply the scenario's phase-length overrides to a resolved spec."""
        overrides = {}
        if self.warmup_instructions is not None:
            overrides["warmup_instructions"] = self.warmup_instructions
        if self.measure_instructions is not None:
            overrides["eval_instructions"] = self.measure_instructions
        if overrides:
            return dataclasses.replace(spec, **overrides)
        return spec

    # ---------------------------------------------------------- serialisation
    def to_dict(self) -> dict:
        """Versioned wire form, shared by the CLI, the server and tests.

        Workloads serialise as their token form (catalog name, family token
        or the ``"tiny"`` shorthand); a full custom
        :class:`~repro.workloads.spec.WorkloadSpec` has no token and is
        rejected.  ``config`` serialises as its *named* form (``"scaled"``,
        ``"paper"``) or ``None`` — anonymous configurations do not travel.
        """
        return {
            "v": SCENARIO_SCHEMA_VERSION,
            "benchmarks": [_workload_token(b) for b in self.benchmarks],
            "cores": [_workload_token(c) for c in self.cores],
            "interleave": list(self.interleave),
            "policies": [policy.canonical() for policy in self.policies],
            "config": self.config.name if self.config is not None else None,
            "warmup_instructions": self.warmup_instructions,
            "measure_instructions": self.measure_instructions,
            "track_reuse": self.track_reuse,
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Scenario":
        """Rebuild a scenario from its wire form (one serializer, three
        consumers: the CLI, ``repro serve`` submissions and the tests).

        Unknown keys and unsupported ``v`` values are rejected.  Invalid
        workload/policy/core tokens raise
        :class:`~repro.common.errors.ConfigurationError` with the offending
        token attached as ``error.token`` (the server echoes it in HTTP 400
        bodies).
        """
        if not isinstance(payload, dict):
            raise ConfigurationError("a scenario payload must be an object")
        unknown = sorted(set(payload) - set(_SCENARIO_FIELDS))
        if unknown:
            raise ConfigurationError(
                f"unknown scenario field(s): {', '.join(unknown)}; "
                f"accepted fields: {', '.join(_SCENARIO_FIELDS)}"
            )
        version = payload.get("v", SCENARIO_SCHEMA_VERSION)
        if version != SCENARIO_SCHEMA_VERSION:
            raise ConfigurationError(
                f"unsupported scenario schema v={version!r}; this build "
                f"speaks v={SCENARIO_SCHEMA_VERSION}"
            )
        benchmarks = tuple(
            resolve_token(token) for token in _token_list(payload, "benchmarks")
        )
        cores = tuple(
            resolve_token(token) for token in _token_list(payload, "cores")
        )
        interleave = payload.get("interleave") or ()
        if not isinstance(interleave, (list, tuple)) or not all(
            isinstance(value, int) and not isinstance(value, bool)
            for value in interleave
        ):
            raise ConfigurationError("interleave must be a list of integers")
        policies = _token_list(payload, "policies") or (BASELINE_POLICY,)
        policy_specs = tuple(_resolve_policy_token(token) for token in policies)
        config_name = payload.get("config")
        config = None
        if config_name is not None:
            if not isinstance(config_name, str):
                raise ConfigurationError("config must be a named configuration")
            config = named_config(config_name)
        for window in ("warmup_instructions", "measure_instructions"):
            value = payload.get(window)
            if value is not None and (
                not isinstance(value, int)
                or isinstance(value, bool)
                or value < 0
            ):
                raise ConfigurationError(f"{window} must be a non-negative integer")
        track_reuse = payload.get("track_reuse", False)
        if not isinstance(track_reuse, bool):
            raise ConfigurationError("track_reuse must be a boolean")
        label = payload.get("label", "")
        if not isinstance(label, str):
            raise ConfigurationError("label must be a string")
        return cls(
            benchmarks=benchmarks,
            cores=cores,
            interleave=tuple(interleave),
            policies=policy_specs,
            config=config,
            warmup_instructions=payload.get("warmup_instructions"),
            measure_instructions=payload.get("measure_instructions"),
            track_reuse=track_reuse,
            label=label,
        )


@dataclass
class RunPlan:
    """A deduplicated, deterministically-ordered batch of run requests.

    ``requests`` preserves the full scenario order (including duplicates);
    ``unique`` holds each distinct coordinate once, in first-appearance
    order, and ``indices[i]`` maps ``requests[i]`` to its entry in
    ``unique``.  Execution simulates ``unique`` and fans results back out.
    """

    requests: list[RunRequest] = field(default_factory=list)
    unique: list[RunRequest] = field(default_factory=list)
    indices: list[int] = field(default_factory=list)

    @property
    def total_runs(self) -> int:
        return len(self.requests)

    @property
    def unique_runs(self) -> int:
        return len(self.unique)

    @property
    def deduplicated(self) -> int:
        """How many requested points are served by an earlier identical one."""
        return len(self.requests) - len(self.unique)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RunPlan({self.total_runs} runs, {self.unique_runs} unique, "
            f"{self.deduplicated} deduplicated)"
        )


def build_plan(
    scenarios: Iterable[Scenario],
    config: Optional[SimulatorConfig] = None,
    options: Optional[PipelineOptions] = None,
) -> RunPlan:
    """Expand scenarios and fold identical points into one plan.

    Zero scenarios would silently produce a 0-run plan that every downstream
    consumer (``Session.execute``, ``Session.stream``) happily executes as a
    no-op; that is never what a caller meant, so it raises eagerly instead.
    """
    scenarios = tuple(scenarios)
    if not scenarios:
        raise ConfigurationError(
            "cannot build a run plan from zero scenarios (the scenario axis "
            "is empty)"
        )
    plan = RunPlan()
    seen: dict[tuple, int] = {}
    for scenario in scenarios:
        for request in scenario.expand(config=config, options=options):
            key = request.key()
            index = seen.get(key)
            if index is None:
                index = len(plan.unique)
                seen[key] = index
                plan.unique.append(request)
            plan.requests.append(request)
            plan.indices.append(index)
    return plan
