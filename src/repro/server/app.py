"""The HTTP face of the ``repro serve`` daemon.

Stdlib-only by design (``http.server.ThreadingHTTPServer``): the service
brings no new dependencies, and its concurrency needs are modest — request
handling is thin (validate, enqueue, snapshot) while all heavy work happens
on the :class:`~repro.server.jobs.JobManager` worker threads.

Endpoints::

    POST /jobs              submit a scenario     -> 202 {job, state, ...}
                            invalid payload       -> 400 {error[, token]}
                            queue full            -> 429 + Retry-After
                            draining / journal
                            unavailable           -> 503 {error}
    GET  /jobs              enumerate all jobs    -> 200 {jobs: [...]}
    GET  /jobs/<id>         status snapshot       -> 200 / 404
    GET  /jobs/<id>/result  results when done     -> 200
                            job failed            -> 500 {error: {...}}
                            not finished yet      -> 409 {state}
    GET  /healthz           liveness              -> 200 {status: "ok"}
    GET  /metrics           counters              -> 200 (see JobManager.metrics)

Every response body is JSON.  SIGTERM/SIGINT trigger a graceful drain:
the listener stops accepting, every accepted job finishes, workers join,
then :meth:`ReproServer.serve_forever` returns (the CLI exits 0).  The
handlers never call ``HTTPServer.shutdown`` directly from a serving thread
— it would deadlock ``serve_forever`` — so the signal path hops through a
one-shot helper thread.
"""

from __future__ import annotations

import json
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro.common.errors import ReproError
from repro.server.jobs import (
    DONE,
    FAILED,
    JobManager,
    QueueFullError,
    ShuttingDownError,
)
from repro.server.submission import SubmissionError, parse_submission


class _Handler(BaseHTTPRequestHandler):
    """Routes requests onto the owning server's job manager."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"

    # --------------------------------------------------------------- plumbing
    @property
    def manager(self) -> JobManager:
        return self.server.app.manager  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.app.verbose:  # type: ignore[attr-defined]
            super().log_message(format, *args)

    def _send(
        self, status: int, payload: dict, headers: Optional[dict] = None
    ) -> None:
        body = json.dumps(payload, indent=1).encode("utf-8") + b"\n"
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _error(
        self, status: int, message: str, headers: Optional[dict] = None
    ) -> None:
        self._send(status, {"error": message}, headers)

    # ----------------------------------------------------------------- routes
    def do_POST(self) -> None:  # noqa: N802 - http.server naming
        if self.path.rstrip("/") != "/jobs":
            self._error(404, f"unknown endpoint {self.path!r}")
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
            payload = json.loads(self.rfile.read(length) or b"null")
        except (ValueError, TypeError):
            self._error(400, "request body must be valid JSON")
            return
        try:
            parsed = parse_submission(
                payload, default_config=self.server.app.default_config
            )
        except SubmissionError as error:
            # Token-level rejections (unknown workload/policy/core token)
            # carry the offending token structurally, so clients can point
            # at it without parsing the prose message.
            body = {"error": str(error)}
            if error.token is not None:
                body["token"] = error.token
            self._send(400, body)
            return
        try:
            job, deduped = self.manager.submit(parsed)
        except QueueFullError as error:
            self._error(429, str(error), {"Retry-After": str(error.retry_after)})
            return
        except ShuttingDownError as error:
            self._error(503, str(error))
            return
        except ReproError as error:
            # Admission infrastructure failure (a journal that cannot take
            # the accepted record, an injected serve.journal fault): the
            # submission was NOT accepted — 503 tells the client to retry,
            # which is safe because submissions are content-addressed.
            self._error(503, str(error))
            return
        self._send(
            202,
            {
                "job": job.id,
                "state": job.state,
                "deduplicated": deduped,
                "points": parsed.total_points,
                "unique_points": parsed.unique_points,
                "status_url": f"/jobs/{job.id}",
                "result_url": f"/jobs/{job.id}/result",
            },
        )

    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        path = self.path.rstrip("/") or "/"
        if path == "/healthz":
            self._send(200, {"status": "ok"})
            return
        if path == "/metrics":
            self._send(200, self.manager.metrics())
            return
        if path == "/jobs":
            self._send(200, {"jobs": self.manager.jobs_snapshot()})
            return
        parts = path.strip("/").split("/")
        if parts[0] == "jobs" and len(parts) == 2:
            self._status(parts[1])
            return
        if parts[0] == "jobs" and len(parts) == 3 and parts[2] == "result":
            self._result(parts[1])
            return
        self._error(404, f"unknown endpoint {self.path!r}")

    def _status(self, job_id: str) -> None:
        job = self.manager.get(job_id)
        if job is None:
            self._error(404, f"unknown job {job_id!r}")
            return
        self._send(200, job.snapshot())

    def _result(self, job_id: str) -> None:
        job = self.manager.get(job_id)
        if job is None:
            self._error(404, f"unknown job {job_id!r}")
            return
        if job.state == DONE:
            self._send(
                200,
                {
                    "job": job.id,
                    "state": job.state,
                    "wall_time_seconds": job.wall_time,
                    "results": job.results,
                },
            )
        elif job.state == FAILED:
            self._send(500, {"job": job.id, "state": job.state, "error": job.error})
        else:
            # Not a client error and not a server error yet: the job simply
            # is not finished.  409 keeps it distinct from both.
            self._send(409, {"job": job.id, "state": job.state})


class ReproServer:
    """`ThreadingHTTPServer` + :class:`JobManager`, wired for graceful drain.

    ``port=0`` binds an ephemeral port (tests); the bound address is
    available as :attr:`host`/:attr:`port`/:attr:`url` immediately after
    construction.  Use :meth:`serve_forever` for the CLI foreground path
    (optionally with :meth:`install_signal_handlers`) or
    :meth:`start_background` + :meth:`stop` from tests and examples.
    """

    def __init__(
        self,
        manager: JobManager,
        host: str = "127.0.0.1",
        port: int = 0,
        default_config: str = "scaled",
        verbose: bool = False,
    ):
        self.manager = manager
        self.default_config = default_config
        self.verbose = verbose
        self._http = ThreadingHTTPServer((host, port), _Handler)
        self._http.daemon_threads = True
        self._http.app = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None
        self._stopping = threading.Event()

    # ---------------------------------------------------------------- address
    @property
    def host(self) -> str:
        return self._http.server_address[0]

    @property
    def port(self) -> int:
        return self._http.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -------------------------------------------------------------- lifecycle
    def serve_forever(self) -> None:
        """Serve until :meth:`shutdown`; then drain the job manager.

        Drain order matters: the listener closes first so no new work can
        arrive, then every already-accepted job completes, then the workers
        join.  Only after that does this return — "SIGTERM exits 0" means
        "with no job half-done".
        """
        self.manager.start()
        try:
            self._http.serve_forever(poll_interval=0.1)
        finally:
            self._http.server_close()
            self.manager.shutdown(drain=True)

    def shutdown(self) -> None:
        """Stop the listener (idempotent, callable from any thread).

        ``HTTPServer.shutdown`` blocks until ``serve_forever`` exits, which
        deadlocks when called from a handler or signal context running on
        the serving thread — so it always runs on a one-shot helper thread.
        """
        if self._stopping.is_set():
            return
        self._stopping.set()
        threading.Thread(target=self._http.shutdown, daemon=True).start()

    def install_signal_handlers(self) -> None:
        """Route SIGTERM/SIGINT to a graceful drain (main thread only)."""

        def _handle(signum, frame):  # noqa: ARG001 - signal signature
            self.shutdown()

        signal.signal(signal.SIGTERM, _handle)
        signal.signal(signal.SIGINT, _handle)

    # In-process embedding (tests, examples) -------------------------------
    def start_background(self) -> None:
        """Run :meth:`serve_forever` on a daemon thread."""
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-serve", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 30.0) -> None:
        """Shut down a background server and wait for the drain to finish."""
        self.shutdown()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    def __enter__(self) -> "ReproServer":
        self.start_background()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


__all__ = ["ReproServer"]
