"""The ``repro serve`` submission journal: accepted jobs survive a crash.

The daemon's queue is in memory, so without a journal a ``SIGKILL`` silently
drops every accepted-but-unfinished job — the client got a 202 and a job id,
and the work evaporates.  :class:`SubmissionJournal` closes that hole with
the append-only JSONL discipline shared with the sweep checkpoint log
(:class:`~repro.common.journal.AppendOnlyJournal`):

* at **admission** (inside the manager lock, before the job is enqueued or
  registered) an ``accepted`` line records the job id, job key, and the
  submission's versioned wire form
  (:meth:`~repro.server.submission.ParsedSubmission.wire`);
* at **completion** a ``done`` / ``failed`` line marks the job terminal.

On startup :meth:`repro.server.jobs.JobManager.recover` replays the journal
and re-enqueues every accepted job without a terminal record, under its
original job id so clients polling across the restart keep working.  The
journal stores *submissions*, not results: a recovered job re-executes
through the session, where every point already durable in the
content-addressed result store is a cache hit — zero repeated simulations
and byte-identical store entries, which is what the durability tests pin.

One journal file per replica (``serve/journal-<replica>.jsonl`` under the
store root) keeps writers single-process; cross-replica dedup is the claim
markers' job (:meth:`~repro.experiments.backends.StoreBackend.acquire_claim`),
not the journal's.
"""

from __future__ import annotations

from pathlib import Path

from repro.common.faults import fire_point
from repro.common.journal import AppendOnlyJournal

#: Subdirectory of the store root holding per-replica serve journals.
SERVE_DIR = "serve"

#: Events that mark a journaled job terminal (no recovery needed).
TERMINAL_EVENTS = ("done", "failed", "skipped")


class SubmissionJournal(AppendOnlyJournal):
    """Crash-durable record of accepted submissions (see module docstring)."""

    @classmethod
    def for_store(
        cls, store_root: Path | str, replica_id: str
    ) -> "SubmissionJournal":
        """The conventional journal location for a replica of a store."""
        return cls(Path(store_root) / SERVE_DIR / f"journal-{replica_id}.jsonl")

    def record(self, event: str, **fields) -> None:
        """Append one event line, with a ``serve.journal`` fault point.

        The fault point fires *before* the write so an armed directive
        models a journal that could not take the event (full disk, dead
        volume) — the admission path turns that into a 503, never into an
        accepted-and-unjournaled job.
        """
        fire_point("serve.journal")
        super().record(event, **fields)

    def pending(self) -> list[dict]:
        """Accepted events with no terminal record, oldest first.

        Re-submissions of one job key reuse the original job id (dedup in
        :meth:`~repro.server.jobs.JobManager.submit`), so entries are
        deduplicated by job id with the latest ``accepted`` line winning.
        """
        accepted: dict[str, dict] = {}
        for entry in self.replay():
            job_id = entry.get("job")
            if not job_id:
                continue
            if entry["event"] == "accepted":
                accepted[job_id] = entry
            elif entry["event"] in TERMINAL_EVENTS:
                accepted.pop(job_id, None)
        return list(accepted.values())

    def counts(self) -> dict[str, int]:
        """Event-name histogram of the whole journal (report summaries)."""
        totals: dict[str, int] = {}
        for entry in self.replay():
            totals[entry["event"]] = totals.get(entry["event"], 0) + 1
        return totals


def journal_paths(store_root: Path | str) -> list[Path]:
    """Every replica journal under a store root, sorted by name."""
    directory = Path(store_root) / SERVE_DIR
    if not directory.is_dir():
        return []
    return sorted(directory.glob("journal-*.jsonl"))


def summarize_journals(store_root: Path | str) -> "str | None":
    """One human line about serve journals under a store, or ``None``.

    Used by ``repro report`` to surface daemon activity next to the store
    provenance line: replica count, accepted/terminal totals, and how many
    jobs a restarted daemon would recover.
    """
    paths = journal_paths(store_root)
    if not paths:
        return None
    accepted = terminal = pending = 0
    for path in paths:
        journal = SubmissionJournal(path)
        counts = journal.counts()
        accepted += counts.get("accepted", 0)
        terminal += sum(counts.get(event, 0) for event in TERMINAL_EVENTS)
        pending += len(journal.pending())
    return (
        f"serve journals: {len(paths)} replica(s), {accepted} accepted, "
        f"{terminal} terminal, {pending} pending recovery"
    )


__all__ = [
    "SERVE_DIR",
    "TERMINAL_EVENTS",
    "SubmissionJournal",
    "journal_paths",
    "summarize_journals",
]
