"""Job queue and worker pool behind the ``repro serve`` daemon.

The execution core is deliberately independent of HTTP: a
:class:`JobManager` owns a bounded FIFO queue of :class:`Job` objects and N
worker threads that execute them through the regular
:class:`~repro.api.session.Session` machinery, so everything the batch CLI
guarantees — store-level dedup, trace capture/replay, lockstep multi-policy
grouping, bit-identical results — holds for served jobs too.  On top of the
store's content-level dedup the manager adds **in-flight job dedup**:
submissions are content-addressed by their
:attr:`~repro.server.submission.ParsedSubmission.job_key` (a hash over the
plan's result-store run keys), so identical concurrent submissions attach to
one queued/running/completed job instead of simulating twice.

Capacity is explicit, never silent:

* a full queue rejects the submission with :class:`QueueFullError`, which
  the HTTP layer maps to ``429`` with a ``Retry-After`` estimate derived
  from observed job wall times;
* :meth:`JobManager.shutdown` stops accepting
  (:class:`ShuttingDownError` → ``503``) and **drains**: every job already
  accepted — running or still queued — completes before the workers exit,
  because an accepted job is a promise.

"An accepted job is a promise" now survives the process too.  Two optional
collaborators extend the manager's guarantees across crashes and replicas:

* a :class:`~repro.server.journal.SubmissionJournal` records every accepted
  submission *inside the admission lock, before the job is enqueued* — so
  acceptance and journaling are atomic with respect to the shutdown cutoff:
  a submission racing ``shutdown()`` is either journaled-and-accepted
  (drain completes it) or cleanly rejected with 503, never
  accepted-and-lost.  :meth:`recover` replays the journal on startup and
  re-enqueues accepted-but-unfinished jobs under their original ids;
  every point already durable in the store is a cache hit, so recovery
  repeats zero simulations and the store stays byte-identical.
* a claims backend (any :class:`~repro.experiments.backends.StoreBackend`
  over the shared store root) deduplicates *across replicas*: before
  executing, a worker acquires a TTL'd claim marker on the job key and a
  heartbeat thread keeps it renewed; a second replica seeing a live claim
  waits (serving from the store once the holder finishes), and a claim
  whose owner died is **adopted** after the TTL lapses.

Worker threads each own a private session (sessions are not thread-safe;
the shared state is the on-disk store, which is).  Fault injection
(``REPRO_FAULTS``) is wired into the execution path via the ``serve.job``
failure point (plus ``serve.journal`` at admission and ``serve.claim``
before claim acquisition): an injected raise/ENOSPC/abort during a served
job marks the job *failed* with a structured error and the worker moves on —
a wedged worker would otherwise silently shrink the pool.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.api.session import Session
from repro.common.errors import JobTimeout, ReproError
from repro.common.faults import fire_point
from repro.experiments.backends import CorruptEntry, StoreBackend
from repro.server.journal import SubmissionJournal
from repro.server.submission import ParsedSubmission, parse_submission

#: Job lifecycle states, in order.
QUEUED, RUNNING, DONE, FAILED = "queued", "running", "done", "failed"

#: States a job can never leave.
TERMINAL_STATES = (DONE, FAILED)

#: Sentinel handed to workers to make them exit after the queue drains.
_STOP = object()


class QueueFullError(ReproError):
    """The bounded job queue is full; retry after ``retry_after`` seconds."""

    def __init__(self, retry_after: int):
        super().__init__(
            f"job queue is full; retry after ~{retry_after}s"
        )
        self.retry_after = retry_after


class ShuttingDownError(ReproError):
    """The manager is draining and no longer accepts submissions."""

    def __init__(self) -> None:
        super().__init__("server is shutting down; submissions are closed")


@dataclass
class Job:
    """One accepted submission and everything learned while serving it."""

    id: str
    key: str
    parsed: ParsedSubmission
    state: str = QUEUED
    #: Submissions served by this job (1 + deduplicated attachments).
    attached: int = 1
    #: Wall-clock submission/start/finish stamps (``time.time``).
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: Execution wall time in seconds (monotonic), set on completion.
    wall_time: Optional[float] = None
    #: One payload per requested point, in request order (state ``done``).
    results: Optional[list[dict]] = None
    #: Structured failure: ``{"type", "message"}`` (state ``failed``).
    error: Optional[dict] = None
    #: True when this job was re-enqueued from the journal after a restart.
    recovered: bool = False
    #: Signalled on entering a terminal state (used by waiters and drain).
    done_event: threading.Event = field(default_factory=threading.Event)

    @property
    def finished(self) -> bool:
        return self.state in TERMINAL_STATES

    def snapshot(self) -> dict:
        """JSON-safe status view (the ``GET /jobs/<id>`` payload)."""
        payload = {
            "job": self.id,
            "state": self.state,
            "submission": self.parsed.normalized,
            "points": self.parsed.total_points,
            "unique_points": self.parsed.unique_points,
            "deduped_submissions": self.attached - 1,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "wall_time_seconds": self.wall_time,
        }
        if self.recovered:
            payload["recovered"] = True
        if self.error is not None:
            payload["error"] = self.error
        return payload

    def brief(self) -> dict:
        """Compact listing row (the ``GET /jobs`` payload entries)."""
        row = {
            "job": self.id,
            "state": self.state,
            "key": self.key,
            "points": self.parsed.total_points,
            "submitted_at": self.submitted_at,
        }
        if self.recovered:
            row["recovered"] = True
        return row


class JobManager:
    """Bounded job queue + worker threads executing through ``Session``.

    ``session_factory`` builds one private session per worker thread (give
    each its own store/archive *instances* over the shared on-disk roots;
    :meth:`store_stats`/:meth:`trace_stats` aggregate the counters).
    ``workers=0`` creates no threads — submissions queue up until
    :meth:`start` runs, which tests use to stage deterministic backpressure
    and dedup scenarios.

    ``journal`` makes acceptance crash-durable (call :meth:`recover` —
    :meth:`start` does — to re-enqueue unfinished jobs after a restart).
    ``claims`` plus ``replica_id`` enable cross-replica dedup over a shared
    store; every replica of one store must use a **distinct** replica id,
    because claims are re-entrant per owner and two replicas sharing an id
    would happily execute the same job concurrently.
    """

    def __init__(
        self,
        session_factory: Optional[Callable[[], Session]] = None,
        workers: int = 2,
        queue_size: int = 16,
        journal: Optional[SubmissionJournal] = None,
        claims: Optional[StoreBackend] = None,
        replica_id: str = "r0",
        claim_ttl: float = 30.0,
        claim_poll: float = 0.05,
    ):
        if workers < 0:
            raise ReproError(f"workers must be >= 0, got {workers}")
        if queue_size < 1:
            raise ReproError(f"queue_size must be >= 1, got {queue_size}")
        if claim_ttl <= 0:
            raise ReproError(f"claim_ttl must be > 0, got {claim_ttl}")
        self._session_factory = session_factory or Session
        self.worker_count = workers
        self.queue_size = queue_size
        self.journal = journal
        self.claims = claims
        self.replica_id = replica_id
        self.claim_ttl = claim_ttl
        self.claim_poll = claim_poll
        # Unbounded queue; the submission bound is enforced explicitly in
        # submit() so recovery can re-enqueue past it — journaled jobs were
        # already promised and must never be dropped for capacity.
        self._queue: "queue.Queue[object]" = queue.Queue()
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self._by_key: dict[str, str] = {}
        self._threads: list[threading.Thread] = []
        self._sessions: list[Session] = []
        self._accepting = True
        self._draining = False
        self._recover_ran = False
        self._sequence = 0
        self._active_claims: set[str] = set()
        self._heartbeat: Optional[threading.Thread] = None
        self._heartbeat_stop = threading.Event()
        self.started_at = time.time()
        # Lifetime counters (states are derived from the jobs themselves).
        self.submitted = 0
        self.deduped = 0
        self.rejected = 0
        self.recovered = 0
        self.adopted = 0
        self.stale_claims_expired = 0
        self.journal_replayed = 0
        self._wall_count = 0
        self._wall_total = 0.0
        self._wall_max = 0.0

    # ------------------------------------------------------------ submission
    def submit(self, parsed: ParsedSubmission) -> tuple[Job, bool]:
        """Accept a parsed submission; returns ``(job, deduplicated)``.

        An in-flight or completed job with the same content key adopts the
        submission (``deduplicated=True``); a failed one does not — the
        resubmission becomes a fresh job, i.e. the retry path.  Raises
        :class:`QueueFullError` on backpressure and
        :class:`ShuttingDownError` during drain; neither registers a job.

        Admission is atomic under the manager lock: the shutdown cutoff
        check, the journal ``accepted`` record, and the enqueue all happen
        together, so a submission racing :meth:`shutdown` is either fully
        accepted (journaled, and the drain will finish it) or fully
        rejected — never accepted-and-lost.  A journal that cannot take the
        record (full disk, injected ``serve.journal`` fault) fails the
        admission the same way: the error propagates *before* the job is
        enqueued or registered, and the HTTP layer answers 503.
        """
        with self._lock:
            if not self._accepting:
                raise ShuttingDownError()
            existing_id = self._by_key.get(parsed.job_key)
            if existing_id is not None:
                existing = self._jobs[existing_id]
                if existing.state != FAILED:
                    existing.attached += 1
                    self.submitted += 1
                    self.deduped += 1
                    return existing, True
            if self._queue.qsize() >= self.queue_size:
                self.rejected += 1
                raise QueueFullError(self._retry_after_locked())
            self._sequence += 1
            job = Job(
                id=f"{parsed.job_key[:12]}-{self._sequence}",
                key=parsed.job_key,
                parsed=parsed,
                submitted_at=time.time(),
            )
            if self.journal is not None:
                try:
                    self.journal.record(
                        "accepted",
                        job=job.id,
                        key=job.key,
                        submitted_at=job.submitted_at,
                        submission=parsed.wire(),
                    )
                except ReproError:
                    self._sequence -= 1
                    self.rejected += 1
                    raise
                except OSError as error:
                    self._sequence -= 1
                    self.rejected += 1
                    raise ReproError(
                        f"submission journal write failed: {error}"
                    ) from error
            self._queue.put(job)
            self.submitted += 1
            self._jobs[job.id] = job
            self._by_key[parsed.job_key] = job.id
            return job, False

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def wait(self, job_id: str, timeout: Optional[float] = None) -> Job:
        """Block until a job reaches a terminal state (or timeout).

        A ``timeout`` caps the total wait and raises :class:`JobTimeout`
        (a :class:`TimeoutError`) naming the job — a job stuck behind a
        claim held by another replica must surface as a bounded failure,
        not an indefinite block.
        """
        job = self.get(job_id)
        if job is None:
            raise KeyError(job_id)
        if not job.done_event.wait(timeout):
            raise JobTimeout(
                f"job {job_id} still {job.state} after {timeout}s"
            )
        return job

    def jobs_snapshot(self) -> list[dict]:
        """Compact rows for every known job, oldest first (``GET /jobs``)."""
        with self._lock:
            jobs = sorted(self._jobs.values(), key=lambda job: job.id)
        return [job.brief() for job in jobs]

    # -------------------------------------------------------------- recovery
    def recover(self) -> int:
        """Replay the journal and re-enqueue unfinished accepted jobs.

        Idempotent (one replay per manager) and called by :meth:`start`, so
        a restarted daemon resumes its promises before serving anything
        new.  Jobs keep their journaled ids — clients polling across the
        restart keep working — and the sequence counter advances past every
        journaled id so new jobs never collide.  A journaled submission
        that no longer parses (schema drift across an upgrade) is recorded
        as ``skipped`` and dropped rather than wedging recovery.

        Returns the number of jobs re-enqueued.
        """
        if self.journal is None or self._recover_ran:
            return 0
        self._recover_ran = True
        events = self.journal.replay()
        if not events:
            return 0
        max_sequence = 0
        for entry in events:
            job_id = entry.get("job") or ""
            tail = job_id.rsplit("-", 1)[-1]
            if tail.isdigit():
                max_sequence = max(max_sequence, int(tail))
        restored = 0
        for entry in self.journal.pending():
            try:
                parsed = parse_submission(entry.get("submission"))
            except ReproError as error:
                self.journal.record(
                    "skipped",
                    job=entry.get("job"),
                    key=entry.get("key"),
                    reason=str(error),
                )
                continue
            job = Job(
                id=entry["job"],
                key=parsed.job_key,
                parsed=parsed,
                submitted_at=entry.get("submitted_at") or time.time(),
                recovered=True,
            )
            with self._lock:
                if job.key in self._by_key or job.id in self._jobs:
                    continue  # already resubmitted ahead of recovery
                self._jobs[job.id] = job
                self._by_key[job.key] = job.id
                self._queue.put(job)
                self.recovered += 1
            restored += 1
        with self._lock:
            self.journal_replayed += len(events)
            self._sequence = max(self._sequence, max_sequence)
        return restored

    def _retry_after_locked(self) -> int:
        """Backpressure hint: how long until a queue slot frees up.

        Scales the mean observed job wall time by the backlog per worker;
        1s floor when nothing has completed yet, 120s cap so a pathological
        first job cannot push clients away for good.
        """
        mean = self._wall_total / self._wall_count if self._wall_count else 1.0
        backlog = self._queue.qsize() + 1
        per_worker = backlog / max(self.worker_count, 1)
        return max(1, min(120, int(mean * per_worker + 0.999)))

    # ------------------------------------------------------------- execution
    def start(self, workers: Optional[int] = None) -> None:
        """Spawn the worker threads (idempotent top-up to ``workers``).

        Runs :meth:`recover` first, so journaled jobs sit at the head of
        the queue before any new submission, and starts the claim
        heartbeat thread when a claims backend is configured.
        """
        self.recover()
        wanted = self.worker_count if workers is None else workers
        self.worker_count = max(self.worker_count, wanted)
        with self._lock:
            missing = wanted - len(self._threads)
            for _ in range(max(0, missing)):
                thread = threading.Thread(
                    target=self._worker_loop,
                    name=f"repro-serve-worker-{len(self._threads)}",
                    daemon=True,
                )
                self._threads.append(thread)
                thread.start()
            if self.claims is not None and self._heartbeat is None:
                self._heartbeat = threading.Thread(
                    target=self._heartbeat_loop,
                    name="repro-serve-heartbeat",
                    daemon=True,
                )
                self._heartbeat.start()

    def _heartbeat_loop(self) -> None:
        """Renew every active claim at a third of the TTL.

        Renewal can fail for a claim another replica adopted after this
        process stalled past the TTL; the marker is simply dropped from the
        active set — the store's content-level dedup keeps even that
        double-execution byte-identical, so adoption is safe, just wasteful.
        """
        interval = self.claim_ttl / 3.0
        while not self._heartbeat_stop.wait(interval):
            with self._lock:
                active = list(self._active_claims)
            for key in active:
                try:
                    renewed = self.claims.renew_claim(
                        key, self.replica_id, self.claim_ttl
                    )
                except OSError:  # pragma: no cover - transient store trouble
                    continue
                if not renewed:
                    with self._lock:
                        self._active_claims.discard(key)

    def _worker_loop(self) -> None:
        session = self._session_factory()
        with self._lock:
            self._sessions.append(session)
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            self._execute(session, item)

    def _execute(self, session: Session, job: Job) -> None:
        with self._lock:
            job.state = RUNNING
            job.started_at = time.time()
        clock_start = time.monotonic()
        try:
            self._secure_claim(job)
            # The served-job failure point: REPRO_FAULTS="serve.job:N=..."
            # targets the N-th job this process executes.  A raise/enospc/
            # abort here (or anywhere in the execution below, including the
            # store/trace write points) must fail the *job*, structurally,
            # not the worker.
            fire_point("serve.job")
            results = self._run(session, job.parsed)
        except Exception as error:  # noqa: BLE001 - the worker must survive
            with self._lock:
                job.error = {
                    "type": type(error).__name__,
                    "message": str(error),
                }
                job.state = FAILED
                self._finish_locked(job, clock_start)
            self._release_claim(job)
            self._journal_safe("failed", job=job.id, key=job.key)
        else:
            with self._lock:
                job.results = results
                job.state = DONE
                self._finish_locked(job, clock_start)
            self._release_claim(job)
            self._journal_safe("done", job=job.id, key=job.key)

    # ---------------------------------------------------------------- claims
    def _secure_claim(self, job: Job) -> None:
        """Hold (or defensibly skip) the cross-replica claim on a job key.

        Loops until the claim is ours or provably unnecessary:

        * ``acquired``/``adopted`` — mark it active (the heartbeat renews
          it) and execute;
        * ``held`` by a live other replica — if the store already has every
          point of the job, execute anyway (pure cache hits, no duplicate
          work); otherwise poll until the holder finishes (its results make
          the store check pass) or its claim expires (we adopt).

        The ``serve.claim`` failure point fires once per executed job,
        before the first acquisition attempt.
        """
        if self.claims is None:
            return
        fire_point("serve.claim")
        while True:
            decision = self.claims.acquire_claim(
                job.key, self.replica_id, self.claim_ttl
            )
            if decision != "held":
                with self._lock:
                    if decision == "adopted":
                        self.adopted += 1
                        self.stale_claims_expired += 1
                    self._active_claims.add(job.key)
                return
            if self._job_stored(job.parsed):
                return  # the holder's results are durable: serve the cache
            time.sleep(self.claim_poll)

    def _release_claim(self, job: Job) -> None:
        if self.claims is None:
            return
        with self._lock:
            held = job.key in self._active_claims
            self._active_claims.discard(job.key)
        if held:
            try:
                self.claims.release_claim(job.key, self.replica_id)
            except OSError:  # pragma: no cover - transient store trouble
                pass

    def _job_stored(self, parsed: ParsedSubmission) -> bool:
        """True when every point of a submission is durable in the store."""
        for key in parsed.run_keys:
            try:
                if self.claims.load("runs", key) is None:
                    return False
            except CorruptEntry:
                return False
        return True

    def _journal_safe(self, event: str, **fields) -> None:
        """Best-effort completion record: losing it only costs a re-run.

        A recovered job re-executes through the session where its points
        are cache hits, so a missing ``done`` line is cheap; failing the
        worker over it would not be.
        """
        if self.journal is None:
            return
        try:
            self.journal.record(event, **fields)
        except Exception:  # noqa: BLE001 - completion records are advisory
            pass

    def _finish_locked(self, job: Job, clock_start: float) -> None:
        job.finished_at = time.time()
        job.wall_time = time.monotonic() - clock_start
        self._wall_count += 1
        self._wall_total += job.wall_time
        self._wall_max = max(self._wall_max, job.wall_time)
        job.done_event.set()

    @staticmethod
    def _run(session: Session, parsed: ParsedSubmission) -> list[dict]:
        """Execute one parsed submission; one payload per requested point.

        Store keys are recomputed by the engine exactly as for a direct CLI
        run, so a served result and a ``repro run``/``repro sweep`` of the
        same point are literally the same store entry.
        """
        plan = parsed.plan
        artifacts = session.execute(plan)
        results = []
        for request, arts, key in zip(plan.requests, artifacts, parsed.run_keys):
            entry = {
                "benchmark": request.spec.name,
                "policy": request.policy.canonical(),
                "store_key": key,
                "result": arts.result.to_dict(),
            }
            if request.track_reuse and arts.reuse is not None:
                entry["reuse"] = {
                    "num_sets": arts.reuse.num_sets,
                    "base": dict(arts.reuse.base.counts),
                    "hot_only": dict(arts.reuse.hot_only.counts),
                }
            results.append(entry)
        return results

    # ----------------------------------------------------------------- drain
    def shutdown(self, drain: bool = True) -> None:
        """Stop accepting submissions and wind the workers down.

        ``drain=True`` (the only shipped mode; the flag exists for tests)
        lets every accepted job — queued included — finish first: the stop
        sentinels queue *behind* the backlog, so workers exit only once it
        is empty.  Idempotent; safe to call from signal handlers via a
        helper thread.
        """
        with self._lock:
            if self._draining:
                return
            self._accepting = False
            self._draining = True
            threads = list(self._threads)
        if not drain:
            try:
                while True:
                    self._queue.get_nowait()
            except queue.Empty:
                pass
        for _ in threads:
            self._queue.put(_STOP)
        for thread in threads:
            thread.join()
        self._heartbeat_stop.set()
        if self._heartbeat is not None:
            self._heartbeat.join()
            self._heartbeat = None
        if self.journal is not None:
            self.journal.close()

    # --------------------------------------------------------------- metrics
    def metrics(self) -> dict:
        """The ``GET /metrics`` payload: jobs, wall times, store counters."""
        with self._lock:
            states = {QUEUED: 0, RUNNING: 0, DONE: 0, FAILED: 0}
            for job in self._jobs.values():
                states[job.state] += 1
            wall = {
                "count": self._wall_count,
                "total_seconds": self._wall_total,
                "max_seconds": self._wall_max,
                "mean_seconds": (
                    self._wall_total / self._wall_count if self._wall_count else 0.0
                ),
            }
            jobs = {
                "submitted": self.submitted,
                "deduped": self.deduped,
                "rejected": self.rejected,
                "queued": states[QUEUED],
                "running": states[RUNNING],
                "completed": states[DONE],
                "failed": states[FAILED],
                "queue_capacity": self.queue_size,
                "workers": len(self._threads),
            }
            durability = {
                "journal": self.journal is not None,
                "replica": self.replica_id,
                "claims": self.claims is not None,
                "recovered": self.recovered,
                "adopted": self.adopted,
                "stale_claims_expired": self.stale_claims_expired,
                "journal_replayed": self.journal_replayed,
            }
            sessions = list(self._sessions)
        return {
            "uptime_seconds": time.time() - self.started_at,
            "jobs": jobs,
            "durability": durability,
            "job_wall_time": wall,
            "store": self._aggregate(
                [s.store for s in sessions if s.store is not None]
            ),
            "traces": self._aggregate(
                [s.traces for s in sessions if s.traces is not None]
            ),
        }

    @staticmethod
    def _aggregate(trackers: list) -> dict[str, int]:
        totals = {"hits": 0, "misses": 0, "writes": 0, "corrupt": 0}
        for tracker in trackers:
            for name, value in tracker.stats().items():
                totals[name] += value
        return totals
