"""The JSON submission protocol of the ``repro serve`` daemon.

A submission is a declarative description of what to simulate — the JSON
twin of a :class:`~repro.api.scenario.Scenario`::

    {
      "benchmarks": ["tiny"],                  # names, family tokens, "tiny"
      "policies": ["lru", "ship:shct_bits=3"], # optional; default baseline
      "config": "scaled",                      # optional; named configuration
      "track_reuse": false,                    # optional; reuse histograms
      "warmup_instructions": 2000,             # optional phase overrides
      "measure_instructions": 6000,
      "label": "my study"                      # optional free-form tag
    }

Validation is eager and total: unknown fields, unknown workloads/policies/
configurations and empty axes all fail here with a
:class:`SubmissionError` (HTTP 400) before anything is queued.  Parsing also
expands the scenario into its :class:`~repro.api.scenario.RunPlan` and
derives two kinds of content hash from it:

* one :func:`~repro.experiments.store.run_key` per requested point — the
  exact store keys a direct ``repro run``/``repro sweep`` of the same grid
  would write, echoed in the result payload so clients can correlate served
  results with store entries;
* the **job key**: a stable hash over the ordered run keys.  Two
  submissions with equal job keys are served by one job (and therefore one
  set of simulations) — the in-flight dedup the job manager applies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api.scenario import RunPlan, Scenario, build_plan
from repro.common.errors import ReproError
from repro.common.hashing import stable_hash
from repro.core.pipeline import PipelineOptions
from repro.experiments.store import run_key
from repro.sim.config import BASELINE_POLICY, NAMED_CONFIGS, named_config
from repro.workloads.spec import tiny_spec

#: Submission schema version, folded into every job key.
SUBMISSION_SCHEMA = 1

#: The accepted top-level payload fields.
FIELDS = (
    "benchmarks",
    "policies",
    "config",
    "track_reuse",
    "warmup_instructions",
    "measure_instructions",
    "label",
)

#: Benchmark token served by the miniature smoke workload (the CLI's
#: ``--tiny``); everything else resolves through the regular catalogs.
TINY_TOKEN = "tiny"


class SubmissionError(ReproError):
    """A submission payload failed validation (HTTP 400)."""


@dataclass(frozen=True)
class ParsedSubmission:
    """A validated submission, expanded and content-addressed."""

    #: Normalised echo of the payload (defaults filled in), JSON-safe.
    normalized: dict
    #: The scenario the job will execute.
    scenario: Scenario
    #: Its expanded, deduplicated plan (built eagerly: free, and it is what
    #: surfaces unknown-workload/policy errors before queueing).
    plan: RunPlan
    #: One result-store key per requested point, in request order.
    run_keys: tuple[str, ...]
    #: Content hash identifying the whole job (dedup coordinate).
    job_key: str

    @property
    def total_points(self) -> int:
        return len(self.plan.requests)

    @property
    def unique_points(self) -> int:
        return len(self.plan.unique)


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SubmissionError(message)


def _string_list(payload: dict, field: str) -> list[str]:
    values = payload.get(field)
    _require(isinstance(values, list) and values, f"{field!r} must be a non-empty list")
    for value in values:
        _require(
            isinstance(value, str) and value.strip(),
            f"{field!r} entries must be non-empty strings",
        )
    return [value.strip() for value in values]


def parse_submission(
    payload: object, default_config: str = "scaled"
) -> ParsedSubmission:
    """Validate a submission payload and expand it into a plan.

    Raises :class:`SubmissionError` on any structural problem; workload,
    policy and configuration tokens are validated through the same
    registries the CLI uses, so the error messages name the offending token
    and the valid choices.
    """
    _require(isinstance(payload, dict), "submission must be a JSON object")
    unknown = sorted(set(payload) - set(FIELDS))
    _require(
        not unknown,
        f"unknown submission field(s) {', '.join(map(repr, unknown))}; "
        f"expected a subset of {', '.join(FIELDS)}",
    )
    _require("benchmarks" in payload, "submission needs a 'benchmarks' list")

    benchmark_tokens = _string_list(payload, "benchmarks")
    policy_tokens = (
        _string_list(payload, "policies")
        if payload.get("policies") is not None
        else [BASELINE_POLICY]
    )
    config_name = payload.get("config", default_config)
    _require(
        isinstance(config_name, str) and config_name in NAMED_CONFIGS,
        f"unknown configuration {config_name!r}; expected one of "
        f"{', '.join(NAMED_CONFIGS)}",
    )
    track_reuse = payload.get("track_reuse", False)
    _require(isinstance(track_reuse, bool), "'track_reuse' must be a boolean")
    label = payload.get("label", "")
    _require(isinstance(label, str), "'label' must be a string")
    overrides = {}
    for field in ("warmup_instructions", "measure_instructions"):
        value = payload.get(field)
        if value is not None:
            _require(
                isinstance(value, int) and not isinstance(value, bool) and value > 0,
                f"{field!r} must be a positive integer",
            )
            overrides[field] = value

    benchmarks = tuple(
        tiny_spec() if token == TINY_TOKEN else token for token in benchmark_tokens
    )
    try:
        scenario = Scenario(
            benchmarks=benchmarks,
            policies=tuple(policy_tokens),
            config=named_config(config_name),
            track_reuse=track_reuse,
            label=label,
            **overrides,
        )
        # Expansion resolves every workload/policy token eagerly — an
        # unknown name fails here, before the job exists.
        plan = build_plan((scenario,), options=PipelineOptions())
    except SubmissionError:
        raise
    except ReproError as error:
        raise SubmissionError(str(error)) from error

    run_keys = tuple(
        run_key(
            request.spec,
            request.policy,
            request.config.with_l2_policy(request.policy),
            request.options,
        )
        for request in plan.requests
    )
    job_key = stable_hash(
        {
            "schema": SUBMISSION_SCHEMA,
            "run_keys": list(run_keys),
            "track_reuse": track_reuse,
        }
    )
    normalized = {
        "benchmarks": benchmark_tokens,
        "policies": policy_tokens,
        "config": config_name,
        "track_reuse": track_reuse,
        "label": label,
        **{field: value for field, value in overrides.items()},
    }
    return ParsedSubmission(
        normalized=normalized,
        scenario=scenario,
        plan=plan,
        run_keys=run_keys,
        job_key=job_key,
    )


__all__ = [
    "FIELDS",
    "ParsedSubmission",
    "SubmissionError",
    "SUBMISSION_SCHEMA",
    "TINY_TOKEN",
    "parse_submission",
]
