"""The JSON submission protocol of the ``repro serve`` daemon.

A submission is the wire form of a :class:`~repro.api.scenario.Scenario` —
the *same* versioned payload :meth:`Scenario.from_dict` accepts, built and
consumed by one serializer shared with the CLI and the tests::

    {
      "v": 1,                                  # optional schema version
      "benchmarks": ["tiny"],                  # names, family tokens, "tiny"
      "cores": ["zipf:alpha=1.2", "streaming"],# multi-core mode (alternative)
      "interleave": [2, 1],                    # optional per-core quanta
      "policies": ["lru", "ship:shct_bits=3"], # optional; default baseline
      "config": "scaled",                      # optional; named configuration
      "track_reuse": false,                    # optional; reuse histograms
      "warmup_instructions": 2000,             # optional phase overrides
      "measure_instructions": 6000,
      "label": "my study"                      # optional free-form tag
    }

Validation is eager and total: unknown fields, unknown workloads/policies/
configurations and empty axes all fail here with a
:class:`SubmissionError` (HTTP 400) before anything is queued; when the
rejection is about one specific token, ``SubmissionError.token`` carries it
so the HTTP layer can echo it structurally.  Parsing also expands the
scenario into its :class:`~repro.api.scenario.RunPlan` and derives two kinds
of content hash from it:

* one store key per requested point — :func:`~repro.experiments.store.run_key`
  for single-core points, :func:`~repro.experiments.store.multicore_run_key`
  for interleaved multi-core points — the exact keys a direct
  ``repro run``/``repro sweep`` of the same grid would write, echoed in the
  result payload so clients can correlate served results with store entries;
* the **job key**: a stable hash over the ordered run keys.  Two
  submissions with equal job keys are served by one job (and therefore one
  set of simulations) — the in-flight dedup the job manager applies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.api.scenario import (
    SCENARIO_SCHEMA_VERSION,
    TINY_TOKEN,
    RunPlan,
    Scenario,
    build_plan,
)
from repro.common.errors import ReproError
from repro.common.hashing import stable_hash
from repro.core.pipeline import PipelineOptions
from repro.experiments.store import multicore_run_key, run_key
from repro.sim.config import NAMED_CONFIGS

#: Submission schema version, folded into every job key.
SUBMISSION_SCHEMA = 1

#: The accepted top-level payload fields (the scenario wire fields).
FIELDS = (
    "v",
    "benchmarks",
    "cores",
    "interleave",
    "policies",
    "config",
    "track_reuse",
    "warmup_instructions",
    "measure_instructions",
    "label",
)


class SubmissionError(ReproError):
    """A submission payload failed validation (HTTP 400).

    ``token`` carries the offending workload/policy/core token when the
    rejection is about one specific token (``None`` for structural errors).
    """

    def __init__(self, message: str, token: Optional[str] = None) -> None:
        super().__init__(message)
        self.token = token


@dataclass(frozen=True)
class ParsedSubmission:
    """A validated submission, expanded and content-addressed."""

    #: Normalised echo of the payload (defaults filled in), JSON-safe.
    normalized: dict
    #: The scenario the job will execute.
    scenario: Scenario
    #: Its expanded, deduplicated plan (built eagerly: free, and it is what
    #: surfaces unknown-workload/policy errors before queueing).
    plan: RunPlan
    #: One result-store key per requested point, in request order.
    run_keys: tuple[str, ...]
    #: Content hash identifying the whole job (dedup coordinate).
    job_key: str

    @property
    def total_points(self) -> int:
        return len(self.plan.requests)

    @property
    def unique_points(self) -> int:
        return len(self.plan.unique)

    def wire(self) -> dict:
        """The submission's journal form: a re-parseable wire payload.

        Built from the *parsed* scenario's versioned serialization (not the
        raw client payload) so the journal always holds a normalized,
        schema-versioned document.  Fields :meth:`Scenario.to_dict` emits
        as empty/``None`` that :func:`parse_submission` would reject or
        treat differently are dropped; re-parsing the result yields the
        same job key — pinned by ``tests/test_server_durability.py``.
        """
        payload = self.scenario.to_dict()
        for field in ("benchmarks", "cores", "interleave"):
            if not payload.get(field):
                payload.pop(field, None)
        for field in ("warmup_instructions", "measure_instructions"):
            if payload.get(field) is None:
                payload.pop(field, None)
        return payload


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SubmissionError(message)


def _string_list(payload: dict, field: str) -> list[str]:
    values = payload.get(field)
    _require(isinstance(values, list) and values, f"{field!r} must be a non-empty list")
    for value in values:
        _require(
            isinstance(value, str) and value.strip(),
            f"{field!r} entries must be non-empty strings",
        )
    return [value.strip() for value in values]


def parse_submission(
    payload: object, default_config: str = "scaled"
) -> ParsedSubmission:
    """Validate a submission payload and expand it into a plan.

    Structural checks (field shapes, the protocol's error-message contract)
    happen here; scenario construction — token resolution included — goes
    through :meth:`Scenario.from_dict`, the one serializer the CLI and the
    tests also use.  Raises :class:`SubmissionError` on any problem, with
    ``token`` set when one submitted token caused the rejection.
    """
    _require(isinstance(payload, dict), "submission must be a JSON object")
    unknown = sorted(set(payload) - set(FIELDS))
    _require(
        not unknown,
        f"unknown submission field(s) {', '.join(map(repr, unknown))}; "
        f"expected a subset of {', '.join(FIELDS)}",
    )
    _require(
        "benchmarks" in payload or "cores" in payload,
        "submission needs a 'benchmarks' list (or 'cores' for multi-core)",
    )

    benchmark_tokens = (
        _string_list(payload, "benchmarks") if "benchmarks" in payload else []
    )
    core_tokens = _string_list(payload, "cores") if "cores" in payload else []
    policy_tokens = (
        _string_list(payload, "policies")
        if payload.get("policies") is not None
        else None
    )
    config_name = payload.get("config", default_config)
    _require(
        isinstance(config_name, str) and config_name in NAMED_CONFIGS,
        f"unknown configuration {config_name!r}; expected one of "
        f"{', '.join(NAMED_CONFIGS)}",
    )
    for field in ("warmup_instructions", "measure_instructions"):
        value = payload.get(field)
        if value is not None:
            _require(
                isinstance(value, int) and not isinstance(value, bool) and value > 0,
                f"{field!r} must be a positive integer",
            )

    wire = {
        "v": payload.get("v", SCENARIO_SCHEMA_VERSION),
        "benchmarks": benchmark_tokens,
        "cores": core_tokens,
        "interleave": payload.get("interleave"),
        "policies": policy_tokens,
        "config": config_name,
        "warmup_instructions": payload.get("warmup_instructions"),
        "measure_instructions": payload.get("measure_instructions"),
        "track_reuse": payload.get("track_reuse", False),
        "label": payload.get("label", ""),
    }
    try:
        scenario = Scenario.from_dict(wire)
        # Expansion resolves every workload/policy token eagerly — an
        # unknown name fails here, before the job exists.
        plan = build_plan((scenario,), options=PipelineOptions())
        # Policies that validate per-geometry (partition way layouts) are
        # built eagerly against the L2 they will run on, so a bad layout is
        # a 400 at submission, not a failed job later.
        _check_policy_geometry(scenario)
    except SubmissionError:
        raise
    except ReproError as error:
        raise SubmissionError(
            str(error), token=getattr(error, "token", None)
        ) from error

    run_keys = tuple(
        multicore_run_key(
            request.cores,
            request.policy,
            request.config.with_l2_policy(request.policy),
            request.options,
            request.interleave,
        )
        if request.is_multicore
        else run_key(
            request.spec,
            request.policy,
            request.config.with_l2_policy(request.policy),
            request.options,
        )
        for request in plan.requests
    )
    job_key = stable_hash(
        {
            "schema": SUBMISSION_SCHEMA,
            "run_keys": list(run_keys),
            "track_reuse": scenario.track_reuse,
        }
    )
    normalized = {
        "benchmarks": benchmark_tokens,
        "policies": policy_tokens if policy_tokens is not None else [
            policy.canonical() for policy in scenario.policies
        ],
        "config": config_name,
        "track_reuse": scenario.track_reuse,
        "label": scenario.label,
    }
    if core_tokens:
        normalized["cores"] = core_tokens
        normalized["interleave"] = list(
            scenario.interleave or (1,) * len(scenario.cores)
        )
    for field in ("warmup_instructions", "measure_instructions"):
        if payload.get(field) is not None:
            normalized[field] = payload[field]
    return ParsedSubmission(
        normalized=normalized,
        scenario=scenario,
        plan=plan,
        run_keys=run_keys,
        job_key=job_key,
    )


def _check_policy_geometry(scenario: Scenario) -> None:
    """Instantiate each policy against the scenario's L2 geometry.

    Cheap (a few small policy objects) and surfaces geometry-dependent
    validation — a ``partition`` way layout that does not cover the L2 —
    as a :class:`SubmissionError` naming the policy token.
    """
    config = scenario.config
    if config is None:  # pragma: no cover - from_dict always sets one here
        return
    l2 = config.hierarchy.l2
    num_sets = l2.size_bytes // (l2.associativity * config.hierarchy.line_size)
    for policy in scenario.policies:
        try:
            policy.build(num_sets, l2.associativity)
        except ReproError as error:
            raise SubmissionError(
                str(error), token=policy.canonical()
            ) from error


__all__ = [
    "FIELDS",
    "ParsedSubmission",
    "SubmissionError",
    "SUBMISSION_SCHEMA",
    "TINY_TOKEN",
    "parse_submission",
]
