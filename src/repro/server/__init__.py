"""Simulation-as-a-service: the ``repro serve`` daemon.

The Session layer, the content-hash result store and the trace archive are
already process-safe and dedup-aware; this package puts an HTTP front end on
them so the replay engine becomes a queryable service instead of a CLI
someone runs:

* :mod:`repro.server.jobs` — the in-process execution core: a bounded job
  queue, N worker threads running submissions through
  :class:`~repro.api.session.Session`, in-flight deduplication by content
  hash (identical concurrent submissions attach to one running simulation),
  explicit backpressure and graceful drain;
* :mod:`repro.server.submission` — the JSON submission protocol: payload
  validation, Scenario construction, and the job content key derived from
  the same :func:`~repro.experiments.store.run_key` hashes the result store
  uses;
* :mod:`repro.server.app` — the stdlib ``ThreadingHTTPServer`` API layer
  (``POST /jobs``, ``GET /jobs``, ``GET /jobs/<id>``,
  ``GET /jobs/<id>/result``, ``GET /healthz``, ``GET /metrics``) plus
  SIGTERM/SIGINT drain;
* :mod:`repro.server.journal` — the crash-durable submission journal:
  accepted jobs are recorded before they are enqueued and re-enqueued by
  :meth:`~repro.server.jobs.JobManager.recover` after a restart, so a
  ``SIGKILL`` never silently drops a promised job.

Cross-replica coordination (N daemons over one shared store executing each
job key exactly once) rides on the store backends' claim markers —
:meth:`~repro.experiments.backends.StoreBackend.acquire_claim` and friends.

The matching blocking client lives in :mod:`repro.client`; the CLI wires
everything up as ``repro serve`` / ``repro submit`` / ``repro status`` /
``repro result``.  Everything is stdlib-only — no new dependencies.
"""

from repro.server.app import ReproServer
from repro.server.jobs import Job, JobManager, QueueFullError, ShuttingDownError
from repro.server.journal import SubmissionJournal, summarize_journals
from repro.server.submission import SubmissionError, parse_submission

__all__ = [
    "Job",
    "JobManager",
    "QueueFullError",
    "ReproServer",
    "ShuttingDownError",
    "SubmissionError",
    "SubmissionJournal",
    "parse_submission",
    "summarize_journals",
]
