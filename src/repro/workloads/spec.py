"""Workload specifications for the paper's benchmarks.

The paper evaluates ten C/C++ "mobile proxy" benchmarks (Table 2) and
motivates the problem with five mobile system-software components (Figure 1).
The real binaries and Pin traces are not reproducible offline, so each
workload is described by a :class:`WorkloadSpec`: the footprint of its hot /
warm / cold code, how much external (non-compiled) code it calls, its data
working sets and access rates, and its control-flow randomness.  The synthetic
program builder and trace generator turn a spec into an instruction stream
whose *cache-relevant shape* (hot-code reuse distance, instruction/data MPKI
balance, PGO coverage) mirrors what the paper reports for that benchmark.

All sizes target the **scaled** simulator configuration (32 kB L2, see
``repro.sim.config``).  Paper-scale runs multiply footprints and trace lengths
with :meth:`WorkloadSpec.scaled`.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass

from repro.common.errors import WorkloadError

KB = 1024


class InputSet(enum.Enum):
    """Which input a run uses (Table 2: training vs. evaluation inputs)."""

    TRAINING = "training"
    EVALUATION = "evaluation"


@dataclass(frozen=True)
class WorkloadSpec:
    """Synthetic description of one benchmark."""

    name: str
    category: str  # "proxy" (Table 2) or "system" (Figure 1)
    description: str

    # ------------------------------------------------------ program structure
    hot_functions: int = 24
    warm_functions: int = 20
    cold_functions: int = 48
    blocks_per_hot_function: int = 10
    blocks_per_warm_function: int = 6
    blocks_per_cold_function: int = 6
    #: Rarely-executed blocks interleaved inside hot/warm functions (error
    #: paths etc.).  They dilute spatial locality until PGO reorders them.
    internal_cold_blocks: int = 6
    block_bytes: int = 64
    external_code_kb: int = 0

    # ----------------------------------------------------- runtime behaviour
    #: Largest inner-loop trip count of a hot function.  Trip counts are
    #: assigned deterministically with a skewed distribution, which creates
    #: the long-tailed BB counter distribution Eq. 1/2 thresholds against.
    max_hot_trip_count: int = 4
    #: Each outer iteration is split into this many segments.  *Core* hot
    #: functions run in every segment (short reuse distance), *regular* hot
    #: functions once per iteration (the marginal 9-16 band of Figure 3) and
    #: *occasional* hot functions only in some iterations (long distance).
    segments_per_iteration: int = 3
    #: Fraction of hot functions in the frequently-executed core.
    hot_core_fraction: float = 0.25
    #: Fraction of hot functions visited only occasionally.
    hot_occasional_fraction: float = 0.25
    #: Probability an occasional hot function is visited in a given iteration.
    occasional_visit_probability: float = 0.4
    hot_visit_fraction: float = 0.92
    warm_call_rate: float = 0.03
    cold_call_rate: float = 0.004
    external_call_rate: float = 0.0
    external_lines_per_call: int = 10
    data_access_rate: float = 0.30
    data_stream_kb: int = 48
    data_reuse_kb: int = 12
    data_stream_fraction: float = 0.40
    branch_entropy: float = 0.08
    depend_stall_rate: float = 0.06
    depend_stall_cycles: int = 2
    issue_stall_rate: float = 0.03
    issue_stall_cycles: int = 2

    # --------------------------------------------------------- trace lengths
    eval_instructions: int = 80_000
    warmup_instructions: int = 20_000
    training_iterations: int = 6
    seed: int = 1

    # ------------------------------------------------------------ validation
    def __post_init__(self) -> None:
        if self.hot_functions <= 0 or self.blocks_per_hot_function <= 0:
            raise WorkloadError(f"{self.name}: needs at least one hot block")
        if self.block_bytes <= 0 or self.block_bytes % 4 != 0:
            raise WorkloadError(f"{self.name}: block_bytes must be a multiple of 4")
        if self.max_hot_trip_count < 1:
            raise WorkloadError(f"{self.name}: max_hot_trip_count must be >= 1")
        if self.segments_per_iteration < 1:
            raise WorkloadError(f"{self.name}: segments_per_iteration must be >= 1")
        if self.hot_core_fraction + self.hot_occasional_fraction >= 1.0:
            raise WorkloadError(
                f"{self.name}: core + occasional hot fractions must leave room "
                "for regular hot functions"
            )
        for rate_name in (
            "hot_visit_fraction",
            "hot_core_fraction",
            "hot_occasional_fraction",
            "occasional_visit_probability",
            "warm_call_rate",
            "cold_call_rate",
            "external_call_rate",
            "data_access_rate",
            "data_stream_fraction",
            "branch_entropy",
            "depend_stall_rate",
            "issue_stall_rate",
        ):
            value = getattr(self, rate_name)
            if not 0.0 <= value <= 1.0:
                raise WorkloadError(
                    f"{self.name}: {rate_name} must be in [0, 1], got {value}"
                )
        if self.eval_instructions <= 0 or self.warmup_instructions < 0:
            raise WorkloadError(f"{self.name}: invalid trace lengths")

    # ------------------------------------------------------------ properties
    @property
    def hot_code_bytes(self) -> int:
        return self.hot_functions * self.blocks_per_hot_function * self.block_bytes

    @property
    def warm_code_bytes(self) -> int:
        return self.warm_functions * self.blocks_per_warm_function * self.block_bytes

    @property
    def cold_code_bytes(self) -> int:
        internal = (
            (self.hot_functions + self.warm_functions)
            * self.internal_cold_blocks
            * self.block_bytes
        )
        standalone = (
            self.cold_functions * self.blocks_per_cold_function * self.block_bytes
        )
        return internal + standalone

    @property
    def total_code_bytes(self) -> int:
        return self.hot_code_bytes + self.warm_code_bytes + self.cold_code_bytes

    @property
    def instructions_per_block(self) -> int:
        return self.block_bytes // 4

    # --------------------------------------------------------------- scaling
    def scaled(self, factor: float) -> "WorkloadSpec":
        """Return a spec with footprints and trace lengths scaled by ``factor``.

        Used to move between the fast scaled configuration and the paper's
        Table 1 cache sizes.
        """
        if factor <= 0:
            raise WorkloadError("scale factor must be positive")

        def scale_int(value: int, minimum: int = 1) -> int:
            return max(int(round(value * factor)), minimum)

        return dataclasses.replace(
            self,
            hot_functions=scale_int(self.hot_functions),
            warm_functions=scale_int(self.warm_functions),
            cold_functions=scale_int(self.cold_functions),
            external_code_kb=int(round(self.external_code_kb * factor)),
            data_stream_kb=scale_int(self.data_stream_kb),
            data_reuse_kb=scale_int(self.data_reuse_kb),
            eval_instructions=scale_int(self.eval_instructions),
            warmup_instructions=scale_int(self.warmup_instructions, minimum=0),
        )

    def with_overrides(self, **overrides) -> "WorkloadSpec":
        """Return a copy with selected fields replaced (used by ablations)."""
        return dataclasses.replace(self, **overrides)


def _proxy(name: str, description: str, **kwargs) -> WorkloadSpec:
    return WorkloadSpec(name=name, category="proxy", description=description, **kwargs)


def _system(name: str, description: str, **kwargs) -> WorkloadSpec:
    return WorkloadSpec(name=name, category="system", description=description, **kwargs)


#: The ten proxy benchmarks of Table 2.  Footprints/rates are chosen so the
#: *relative* shape of Table 3 (instruction vs. data MPKI, PGO coverage of
#: costly misses, TRRIP headroom) carries over to the scaled configuration.
PROXY_BENCHMARKS: dict[str, WorkloadSpec] = {
    spec.name: spec
    for spec in (
        _proxy(
            "abseil",
            "C++ utility library test-suite proxy: data-heavy, moderate hot code",
            hot_functions=26,
            warm_functions=24,
            cold_functions=64,
            data_access_rate=0.34,
            data_stream_kb=96,
            data_reuse_kb=10,
            data_stream_fraction=0.45,
            eval_instructions=90_000,
            seed=11,
        ),
        _proxy(
            "bullet",
            "physics/rendering proxy: small hot loop, frequent external calls",
            hot_functions=12,
            warm_functions=10,
            cold_functions=32,
            blocks_per_hot_function=8,
            external_code_kb=24,
            external_call_rate=0.14,
            data_access_rate=0.30,
            data_stream_kb=32,
            data_reuse_kb=8,
            data_stream_fraction=0.40,
            branch_entropy=0.05,
            eval_instructions=60_000,
            warmup_instructions=15_000,
            seed=12,
        ),
        _proxy(
            "clamscan",
            "malware-scanner proxy: small-medium hot code, streaming data scans",
            hot_functions=15,
            warm_functions=12,
            cold_functions=40,
            blocks_per_hot_function=9,
            external_code_kb=16,
            external_call_rate=0.08,
            data_access_rate=0.32,
            data_stream_kb=72,
            data_reuse_kb=8,
            data_stream_fraction=0.50,
            eval_instructions=70_000,
            warmup_instructions=15_000,
            seed=13,
        ),
        _proxy(
            "clang",
            "compiler proxy: very large instruction footprint, deep call paths",
            hot_functions=34,
            warm_functions=40,
            cold_functions=120,
            blocks_per_hot_function=11,
            internal_cold_blocks=8,
            data_access_rate=0.26,
            data_stream_kb=64,
            data_reuse_kb=8,
            data_stream_fraction=0.30,
            warm_call_rate=0.05,
            cold_call_rate=0.008,
            branch_entropy=0.10,
            eval_instructions=120_000,
            warmup_instructions=30_000,
            seed=14,
        ),
        _proxy(
            "deepsjeng",
            "chess-engine proxy: compact code slightly exceeding cache ways, low MPKI",
            hot_functions=18,
            warm_functions=8,
            cold_functions=20,
            blocks_per_hot_function=9,
            data_access_rate=0.18,
            data_stream_kb=16,
            data_reuse_kb=8,
            data_stream_fraction=0.25,
            warm_call_rate=0.02,
            branch_entropy=0.12,
            eval_instructions=70_000,
            warmup_instructions=15_000,
            seed=15,
        ),
        _proxy(
            "gcc",
            "compiler proxy: large instruction footprint, mixed data locality",
            hot_functions=31,
            warm_functions=28,
            cold_functions=96,
            internal_cold_blocks=8,
            data_access_rate=0.26,
            data_stream_kb=64,
            data_reuse_kb=8,
            data_stream_fraction=0.30,
            warm_call_rate=0.04,
            branch_entropy=0.10,
            eval_instructions=110_000,
            warmup_instructions=30_000,
            seed=16,
        ),
        _proxy(
            "omnetpp",
            "discrete-event simulator proxy: pointer-chasing data, warm-heavy code",
            hot_functions=30,
            warm_functions=32,
            cold_functions=72,
            data_access_rate=0.30,
            data_stream_kb=64,
            data_reuse_kb=10,
            data_stream_fraction=0.35,
            warm_call_rate=0.06,
            eval_instructions=90_000,
            seed=17,
        ),
        _proxy(
            "python",
            "interpreter proxy: large dispatch loops, sizeable hot footprint",
            hot_functions=32,
            warm_functions=26,
            cold_functions=80,
            data_access_rate=0.28,
            data_stream_kb=64,
            data_reuse_kb=8,
            data_stream_fraction=0.30,
            warm_call_rate=0.04,
            branch_entropy=0.09,
            eval_instructions=100_000,
            warmup_instructions=25_000,
            seed=18,
        ),
        _proxy(
            "rapidjson",
            "JSON-parser proxy: tiny hot loop, streaming data, external helpers",
            hot_functions=11,
            warm_functions=10,
            cold_functions=32,
            blocks_per_hot_function=8,
            external_code_kb=24,
            external_call_rate=0.13,
            data_access_rate=0.34,
            data_stream_kb=88,
            data_reuse_kb=8,
            data_stream_fraction=0.50,
            branch_entropy=0.05,
            eval_instructions=60_000,
            warmup_instructions=15_000,
            seed=19,
        ),
        _proxy(
            "sqlite",
            "embedded-database proxy: large VM dispatch code, moderate data",
            hot_functions=29,
            warm_functions=22,
            cold_functions=72,
            data_access_rate=0.24,
            data_stream_kb=48,
            data_reuse_kb=8,
            data_stream_fraction=0.30,
            warm_call_rate=0.04,
            branch_entropy=0.08,
            eval_instructions=90_000,
            seed=20,
        ),
    )
}

#: The five mobile system-software components profiled in Figure 1.
SYSTEM_COMPONENTS: dict[str, WorkloadSpec] = {
    spec.name: spec
    for spec in (
        _system(
            "interp",
            "bytecode interpreter of the language runtime",
            hot_functions=32,
            warm_functions=28,
            cold_functions=72,
            data_access_rate=0.26,
            data_stream_kb=48,
            data_reuse_kb=8,
            data_stream_fraction=0.30,
            warm_call_rate=0.05,
            branch_entropy=0.10,
            eval_instructions=60_000,
            warmup_instructions=15_000,
            seed=31,
        ),
        _system(
            "ui",
            "user-interface framework shared library",
            hot_functions=30,
            warm_functions=32,
            cold_functions=96,
            data_access_rate=0.30,
            data_stream_kb=64,
            data_reuse_kb=8,
            data_stream_fraction=0.35,
            warm_call_rate=0.06,
            eval_instructions=60_000,
            warmup_instructions=15_000,
            seed=32,
        ),
        _system(
            "graphics",
            "graphics shared library",
            hot_functions=28,
            warm_functions=24,
            cold_functions=72,
            data_access_rate=0.32,
            data_stream_kb=72,
            data_reuse_kb=8,
            data_stream_fraction=0.45,
            warm_call_rate=0.05,
            eval_instructions=60_000,
            warmup_instructions=15_000,
            seed=33,
        ),
        _system(
            "render",
            "rendering shared library",
            hot_functions=29,
            warm_functions=28,
            cold_functions=80,
            data_access_rate=0.30,
            data_stream_kb=64,
            data_reuse_kb=8,
            data_stream_fraction=0.40,
            warm_call_rate=0.05,
            eval_instructions=60_000,
            warmup_instructions=15_000,
            seed=34,
        ),
        _system(
            "js_runtime",
            "JavaScript runtime shared library",
            hot_functions=33,
            warm_functions=32,
            cold_functions=96,
            data_access_rate=0.28,
            data_stream_kb=56,
            data_reuse_kb=8,
            data_stream_fraction=0.35,
            warm_call_rate=0.06,
            branch_entropy=0.10,
            eval_instructions=60_000,
            warmup_instructions=15_000,
            seed=35,
        ),
    )
}

#: Names in the order the paper's figures list them.
PROXY_BENCHMARK_NAMES: tuple[str, ...] = (
    "abseil",
    "bullet",
    "clamscan",
    "clang",
    "deepsjeng",
    "gcc",
    "omnetpp",
    "python",
    "rapidjson",
    "sqlite",
)

SYSTEM_COMPONENT_NAMES: tuple[str, ...] = (
    "interp",
    "ui",
    "graphics",
    "render",
    "js_runtime",
)


def get_spec(name: str) -> WorkloadSpec:
    """Look up a workload spec by benchmark name."""
    if name in PROXY_BENCHMARKS:
        return PROXY_BENCHMARKS[name]
    if name in SYSTEM_COMPONENTS:
        return SYSTEM_COMPONENTS[name]
    raise WorkloadError(
        f"unknown workload {name!r}; known: "
        f"{', '.join(list(PROXY_BENCHMARKS) + list(SYSTEM_COMPONENTS))}"
    )


def resolve_spec(
    benchmark: "str | WorkloadSpec", workload_scale: float = 1.0
) -> WorkloadSpec:
    """Resolve a benchmark name/spec, applying ``workload_scale`` exactly once.

    The single implementation of the scaling rule: both the engine
    (``BenchmarkRunner.resolve_spec``) and the scenario layer
    (``repro.api.scenario.resolve_benchmark``) delegate here, so a spec can
    never be scaled twice on one path and once on another.
    """
    spec = benchmark if isinstance(benchmark, WorkloadSpec) else get_spec(benchmark)
    if workload_scale != 1.0:
        spec = spec.scaled(workload_scale)
    return spec


def tiny_spec(name: str = "tinybench", seed: int = 99) -> WorkloadSpec:
    """A miniature workload for smoke tests and CLI dry runs.

    Roughly 10x smaller than the real proxies in both code footprint and
    trace length, so a full experiment over it completes in well under a
    second.  Used by the test suite and by ``repro run --tiny``; it is *not*
    part of the paper's benchmark catalog (``get_spec`` does not know it).
    """
    return WorkloadSpec(
        name=name,
        category="proxy",
        description="miniature smoke-test workload (not a paper benchmark)",
        hot_functions=8,
        warm_functions=4,
        cold_functions=8,
        blocks_per_hot_function=4,
        blocks_per_warm_function=3,
        blocks_per_cold_function=3,
        internal_cold_blocks=2,
        external_code_kb=4,
        external_call_rate=0.05,
        data_access_rate=0.25,
        data_stream_kb=8,
        data_reuse_kb=4,
        eval_instructions=6_000,
        warmup_instructions=2_000,
        training_iterations=3,
        seed=seed,
    )


def all_proxy_specs() -> list[WorkloadSpec]:
    """The ten Table 2 proxies, in paper order."""
    return [PROXY_BENCHMARKS[name] for name in PROXY_BENCHMARK_NAMES]


def all_system_specs() -> list[WorkloadSpec]:
    """The five Figure 1 system components, in paper order."""
    return [SYSTEM_COMPONENTS[name] for name in SYSTEM_COMPONENT_NAMES]
