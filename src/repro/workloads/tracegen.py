"""Trace generation: turn a compiled workload into an instruction stream.

The generator walks the control-flow model (evaluation input), resolves each
basic block to its virtual address in the compiled binary, and emits one
dynamic instruction per slot:

* hot functions execute their hot path ``trip_count`` times (an inner loop
  that the L1-I absorbs — the L2-level reuse distance stays governed by the
  outer iteration over the full hot footprint);
* block-ending instructions are branches whose taken/not-taken behaviour falls
  out of the code layout (PGO layouts produce more fall-throughs);
* data accesses are attached to a configurable fraction of instructions and
  split between a streaming buffer and a smaller reused region;
* external calls fetch code from the untagged external region (PLT stubs /
  other libraries — the coverage gap of Figure 7a).

Internally the stream is produced as packed column tuples
``(pc, size, flags, branch_target, mem_address, depend, issue)``; the
:meth:`TraceGenerator.records` view wraps them into
:class:`~repro.common.trace.TraceRecord` objects, while
:meth:`TraceGenerator.take_packed` appends them straight into a
:class:`~repro.common.trace.PackedTrace` without allocating one dataclass per
dynamic instruction.  Both views draw from the same underlying stream with the
same RNG consumption, so mixing them yields the exact trace a pure-record
run would produce.

The generator keeps internal state so a warm-up prefix and a measured window
can be drawn from the same continuous stream (Table 2's fast-forwarding).
"""

from __future__ import annotations

import itertools
import random
from typing import Iterator, Optional

from repro.common.addressing import CACHE_LINE_SIZE
from repro.common.errors import WorkloadError
from repro.common.trace import (
    FLAG_BRANCH,
    FLAG_CALL,
    FLAG_DEPEND,
    FLAG_INDIRECT,
    FLAG_ISSUE,
    FLAG_MEM,
    FLAG_RETURN,
    FLAG_STORE,
    FLAG_TAKEN,
    PackedTrace,
    TraceRecord,
)
from repro.compiler.pgo import CompiledBinary
from repro.workloads.behavior import ControlFlowModel, FunctionCall
from repro.workloads.builder import SyntheticWorkload
from repro.workloads.spec import InputSet

#: Instruction size used for external-code records: external code is walked
#: sparsely (we only care about the lines it touches, not its exact length).
EXTERNAL_INSTRUCTION_BYTES = 16
#: Fraction of data accesses that are stores.
STORE_FRACTION = 0.3
#: How far the streaming pointer advances per access.  Streaming code touches
#: several consecutive elements of a buffer before moving to the next cache
#: line, so one line amortises a handful of accesses.
STREAM_STRIDE_BYTES = 8

#: Packed flag word of a function-ending return branch.
_RETURN_FLAGS = FLAG_BRANCH | FLAG_TAKEN | FLAG_RETURN


class TraceGenerator:
    """Stateful generator of instruction traces for one compiled workload."""

    def __init__(
        self,
        workload: SyntheticWorkload,
        binary: CompiledBinary,
        input_set: InputSet = InputSet.EVALUATION,
    ) -> None:
        if binary.program.name != workload.spec.name:
            raise WorkloadError(
                f"binary {binary.program.name!r} does not match workload "
                f"{workload.spec.name!r}"
            )
        self.workload = workload
        self.spec = workload.spec
        self.binary = binary
        self.input_set = input_set
        self._model = ControlFlowModel(workload, input_set)
        self._rng = random.Random(self.spec.seed * 7919 + 3)
        self._stream_offset = 0
        self._raw = self._raw_stream()

    # ------------------------------------------------------------ public API
    def records(self, count: int) -> Iterator[TraceRecord]:
        """Yield the next ``count`` records of the (infinite) trace."""
        if count < 0:
            raise WorkloadError("record count must be non-negative")
        return map(self._to_record, itertools.islice(self._raw, count))

    def take(self, count: int) -> list[TraceRecord]:
        """Materialise the next ``count`` records as a list."""
        return list(self.records(count))

    def take_packed(self, count: int) -> PackedTrace:
        """Materialise the next ``count`` instructions as a packed trace.

        This advances the same underlying stream as :meth:`records`, but the
        columns are filled directly — no per-instruction ``TraceRecord`` (with
        its ``__post_init__`` validation) is ever allocated.
        """
        if count < 0:
            raise WorkloadError("record count must be non-negative")
        packed = PackedTrace()
        append = packed.append_raw
        for row in itertools.islice(self._raw, count):
            append(*row)
        return packed

    def reset(self) -> None:
        """Restart the trace from the beginning (deterministic replay)."""
        self._model.reset()
        self._rng = random.Random(self.spec.seed * 7919 + 3)
        self._stream_offset = 0
        self._raw = self._raw_stream()

    # ------------------------------------------------------------ generation
    @staticmethod
    def _to_record(row: tuple[int, int, int, int, int, int, int]) -> TraceRecord:
        pc, size, flags, branch_target, mem_address, depend, issue = row
        return TraceRecord(
            pc=pc,
            size=size,
            is_branch=bool(flags & FLAG_BRANCH),
            branch_taken=bool(flags & FLAG_TAKEN),
            branch_target=branch_target,
            is_indirect=bool(flags & FLAG_INDIRECT),
            is_call=bool(flags & FLAG_CALL),
            is_return=bool(flags & FLAG_RETURN),
            mem_address=mem_address if flags & FLAG_MEM else None,
            is_store=bool(flags & FLAG_STORE),
            depend_stall=depend,
            issue_stall=issue,
        )

    def _raw_stream(self) -> Iterator[tuple[int, int, int, int, int, int, int]]:
        for call in self._model.calls():
            if call.kind == "external":
                yield from self._external_rows()
            else:
                yield from self._function_rows(call)

    def _function_rows(
        self, call: FunctionCall
    ) -> Iterator[tuple[int, int, int, int, int, int, int]]:
        workload = self.workload
        spec = self.spec
        name = call.function_name
        blocks = workload.executed_blocks_of(name)
        if not blocks:
            return
        addresses = [self.binary.block_address(block_id) for block_id in blocks]
        trips = workload.trip_count(name) if call.kind == "hot" else 1
        instructions_per_block = spec.instructions_per_block

        for trip in range(trips):
            last_trip = trip == trips - 1
            for position, address in enumerate(addresses):
                last_block = position == len(addresses) - 1
                for slot in range(instructions_per_block):
                    pc = address + 4 * slot
                    is_last_instruction = slot == instructions_per_block - 1
                    if not is_last_instruction:
                        yield self._plain_row(pc)
                        continue
                    yield self._block_end_branch(
                        pc,
                        next_address=(
                            addresses[position + 1]
                            if not last_block
                            else (addresses[0] if not last_trip else None)
                        ),
                        loop_back=last_block and not last_trip,
                    )

    def _block_end_branch(
        self, pc: int, next_address: Optional[int], loop_back: bool
    ) -> tuple[int, int, int, int, int, int, int]:
        rng = self._rng
        if next_address is None:
            # Function end: model as a return.  Target 0 keeps the return
            # stack trivially consistent (no matching call was emitted).
            return (pc, 4, _RETURN_FLAGS, 0, 0, 0, 0)
        taken = next_address != pc + 4
        if loop_back:
            taken = True
        elif self.spec.branch_entropy and rng.random() < self.spec.branch_entropy:
            # Data-dependent branch: direction is effectively random, which is
            # what defeats the global history predictor.
            taken = rng.random() < 0.5
        flags = FLAG_BRANCH | FLAG_TAKEN if taken else FLAG_BRANCH
        return (pc, 4, flags, next_address, 0, 0, 0)

    def _plain_row(self, pc: int) -> tuple[int, int, int, int, int, int, int]:
        spec = self.spec
        rng = self._rng
        flags = 0
        mem_address = 0
        if rng.random() < spec.data_access_rate:
            mem_address, is_store = self._data_access()
            flags = FLAG_MEM | FLAG_STORE if is_store else FLAG_MEM
        depend = 0
        if spec.depend_stall_rate and rng.random() < spec.depend_stall_rate:
            depend = spec.depend_stall_cycles
            if depend:
                flags |= FLAG_DEPEND
        issue = 0
        if spec.issue_stall_rate and rng.random() < spec.issue_stall_rate:
            issue = spec.issue_stall_cycles
            if issue:
                flags |= FLAG_ISSUE
        return (pc, 4, flags, 0, mem_address, depend, issue)

    def _data_access(self) -> tuple[int, bool]:
        spec = self.spec
        rng = self._rng
        workload = self.workload
        if rng.random() < spec.data_stream_fraction or workload.data_reuse_bytes == 0:
            address = workload.data_stream_base + self._stream_offset
            self._stream_offset = (
                self._stream_offset + STREAM_STRIDE_BYTES
            ) % max(workload.data_stream_bytes, STREAM_STRIDE_BYTES)
        else:
            reuse_lines = max(workload.data_reuse_bytes // CACHE_LINE_SIZE, 1)
            # Cubing skews strongly towards low line numbers: a small,
            # frequently reused core with a colder tail.
            line = int(rng.random() ** 3 * reuse_lines) % reuse_lines
            address = workload.data_reuse_base + line * CACHE_LINE_SIZE
        return address, rng.random() < STORE_FRACTION

    def _external_rows(self) -> Iterator[tuple[int, int, int, int, int, int, int]]:
        image = self.binary.image
        if image.external_size <= 0:
            return
        spec = self.spec
        rng = self._rng
        total_lines = max(image.external_size // CACHE_LINE_SIZE, 1)
        span = min(spec.external_lines_per_call, total_lines)
        start_line = rng.randrange(max(total_lines - span, 1))
        instructions_per_line = CACHE_LINE_SIZE // EXTERNAL_INSTRUCTION_BYTES
        for line in range(span):
            base = image.external_base + (start_line + line) * CACHE_LINE_SIZE
            for slot in range(instructions_per_line):
                pc = base + slot * EXTERNAL_INSTRUCTION_BYTES
                last = line == span - 1 and slot == instructions_per_line - 1
                if last:
                    yield (pc, EXTERNAL_INSTRUCTION_BYTES, _RETURN_FLAGS, 0, 0, 0, 0)
                else:
                    yield (pc, EXTERNAL_INSTRUCTION_BYTES, 0, 0, 0, 0, 0)
