"""Stochastic control-flow model shared by the profiler and trace generator.

A workload executes as a sequence of *outer iterations*, each split into a few
*segments*.  Hot functions fall into three classes (mirroring the Figure 3
reuse-distance mix):

* **core** hot functions execute in every segment — short L2 reuse distance
  (the 0-4 bucket), they stay cache-resident under any reasonable policy;
* **regular** hot functions execute once per iteration — the marginal 9-16
  band where conventional policies evict them just before reuse and TRRIP's
  insertion priority makes the difference;
* **occasional** hot functions execute only in some iterations — the 16+ tail.

Warm functions, cold functions and external (non-compiled) code are called
occasionally after hot visits.  The same model drives both profile collection
(training input) and trace generation (evaluation input); the two input sets
use different random streams and differ in one important way: **cold code is
never executed during training** (that is what makes it cold), but the
evaluation input occasionally reaches it — the profile-vs-reality mismatch the
paper mentions as the reason PGO sometimes degrades performance.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from repro.workloads.builder import SyntheticWorkload
from repro.workloads.spec import InputSet


@dataclass(frozen=True)
class FunctionCall:
    """One dynamic function invocation in the control-flow stream."""

    kind: str  # "hot" | "warm" | "cold" | "external"
    function_name: str | None = None


@dataclass(frozen=True)
class HotFunctionClasses:
    """Partition of the hot functions by execution frequency."""

    core: tuple[str, ...]
    regular: tuple[str, ...]
    occasional: tuple[str, ...]


def classify_hot_functions(workload: SyntheticWorkload) -> HotFunctionClasses:
    """Split hot functions into core / regular / occasional classes."""
    spec = workload.spec
    names = list(workload.hot_function_names)
    total = len(names)
    core_count = max(1, int(round(total * spec.hot_core_fraction)))
    occasional_count = int(round(total * spec.hot_occasional_fraction))
    occasional_count = min(occasional_count, max(total - core_count - 1, 0))
    core = tuple(names[:core_count])
    occasional = tuple(names[total - occasional_count:]) if occasional_count else ()
    regular = tuple(names[core_count : total - occasional_count])
    return HotFunctionClasses(core=core, regular=regular, occasional=occasional)


class ControlFlowModel:
    """Deterministic pseudo-random walk over a workload's functions."""

    def __init__(self, workload: SyntheticWorkload, input_set: InputSet) -> None:
        self.workload = workload
        self.spec = workload.spec
        self.input_set = input_set
        self.classes = classify_hot_functions(workload)
        seed_offset = 1 if input_set is InputSet.TRAINING else 2
        self._seed = self.spec.seed * 1009 + seed_offset
        self._rng = random.Random(self._seed)

    def reset(self) -> None:
        self._rng = random.Random(self._seed)

    # ------------------------------------------------------------- iteration
    def one_iteration(self) -> Iterator[FunctionCall]:
        """Yield the function calls of a single outer iteration."""
        spec = self.spec
        rng = self._rng
        segments = spec.segments_per_iteration
        classes = self.classes

        regular = [
            name
            for name in classes.regular
            if rng.random() < spec.hot_visit_fraction
        ]
        occasional = [
            name
            for name in classes.occasional
            if rng.random() < spec.occasional_visit_probability
        ]
        # Regular/occasional functions are spread across the segments;
        # core functions run in every segment.
        rng.shuffle(regular)
        rng.shuffle(occasional)
        for segment in range(segments):
            segment_functions = list(classes.core)
            segment_functions.extend(regular[segment::segments])
            segment_functions.extend(occasional[segment::segments])
            rng.shuffle(segment_functions)
            for name in segment_functions:
                yield FunctionCall("hot", name)
                yield from self._side_calls(rng)

    def _side_calls(self, rng: random.Random) -> Iterator[FunctionCall]:
        """Warm/cold/external calls sprinkled after a hot function visit."""
        spec = self.spec
        allow_cold = self.input_set is InputSet.EVALUATION
        if (
            spec.warm_call_rate
            and self.workload.warm_function_names
            and rng.random() < spec.warm_call_rate
        ):
            yield FunctionCall("warm", rng.choice(self.workload.warm_function_names))
        if (
            allow_cold
            and spec.cold_call_rate
            and self.workload.cold_function_names
            and rng.random() < spec.cold_call_rate
        ):
            yield FunctionCall("cold", rng.choice(self.workload.cold_function_names))
        if spec.external_call_rate and rng.random() < spec.external_call_rate:
            yield FunctionCall("external", None)

    def calls(self) -> Iterator[FunctionCall]:
        """Infinite stream of function calls across outer iterations."""
        while True:
            yield from self.one_iteration()
