"""Trace capture and replay: persist packed traces, regenerate never.

Synthetic trace generation is deterministic but not free — for a paper-scale
spec it costs more than the simulation itself once the engine replays packed
columns.  Capture-and-replay (the CGReplay idea from the related work)
decouples the two: the first run of a workload **captures** its packed
warm-up/measured trace pair to disk, and every later run — same process,
another process, a CI job, a pool worker — **replays** the bytes instead of
re-walking the generator.  Because a :class:`~repro.common.trace.PackedTrace`
is already column-oriented machine integers, the on-disk format is simply a
versioned header plus the raw column bytes; replay is a handful of
``array.frombytes`` calls.

Keys reuse the content-hash machinery of the result store
(:mod:`repro.common.hashing`): a trace is fully determined by the *resolved*
:class:`~repro.workloads.spec.WorkloadSpec` and the
:class:`~repro.core.pipeline.PipelineOptions` that shaped the binary layout,
so :func:`trace_key` hashes exactly those (plus a schema version).  The same
inputs are part of every result-store key, which is what makes the guarantee
composable: a replayed trace feeds the simulator bit-identical columns, the
simulation produces a bit-identical result, and the run lands on the same
store key as a generated one (pinned by ``tests/test_capture.py`` and the CI
determinism job).

Layout under the archive root (default ``$REPRO_TRACE_DIR``, else
``<result-store root>/traces``):

* ``<k0k1>/<key>.trace`` — one captured (warm-up, measured) pair: an 8-byte
  magic, a little-endian header length, a JSON header echoing the key inputs
  (benchmark, lengths, column types, byte order), then the raw column bytes.

Corrupt, truncated or foreign-endian-incompatible files are treated as plain
misses and overwritten by the next capture.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
from array import array
from pathlib import Path
from typing import TYPE_CHECKING, Optional

from repro.common.addressing import CACHE_LINE_SIZE
from repro.common.faults import fire_point
from repro.common.hashing import canonical_payload, stable_hash
from repro.common.trace import PackedTrace
from repro.workloads.spec import WorkloadSpec

if TYPE_CHECKING:  # the pipeline imports this package; keep layering acyclic
    from repro.core.pipeline import PipelineOptions

#: Bump when the on-disk layout or anything a key covers changes; old
#: entries then simply stop matching.  Version 2 added the precomputed
#: address-geometry columns (fetch events and memory line numbers for the
#: standard cache line size), so replayed traces skip all shift/mask and
#: event-scan work; version-1 archives are treated as plain misses and
#: regenerated.
TRACE_SCHEMA_VERSION = 2

MAGIC = b"RPROTRC1"

#: The packed-trace columns, in on-disk order, with their array typecodes.
COLUMNS: tuple[tuple[str, str], ...] = (
    ("pc", "Q"),
    ("size", "H"),
    ("flags", "H"),
    ("branch_target", "Q"),
    ("mem_address", "Q"),
    ("depend_stall", "I"),
    ("issue_stall", "I"),
)

#: Cache line size the precomputed geometry columns are captured for (the
#: line size of every shipped configuration).  A replay at a different line
#: size simply recomputes lazily, exactly as before capture existed.
GEOMETRY_LINE_SIZE = CACHE_LINE_SIZE

#: The geometry columns, in on-disk order.  The first four are per fetch
#: *event* (see :meth:`~repro.common.trace.PackedTrace.fetch_events`); the
#: last is per instruction
#: (:meth:`~repro.common.trace.PackedTrace.mem_lines`).
GEOMETRY_COLUMNS: tuple[tuple[str, str], ...] = (
    ("event_indices", "I"),
    ("event_pcs", "Q"),
    ("event_flags", "H"),
    ("event_lines", "Q"),
    ("mem_lines", "Q"),
)

#: Segment names of one capture, in on-disk order.
SEGMENTS = ("warmup", "measured")


class CaptureFormatError(Exception):
    """A trace file failed structural validation (treated as a cache miss)."""


def default_trace_root() -> Path:
    """``$REPRO_TRACE_DIR`` if set, else ``<result-store root>/traces``."""
    env = os.environ.get("REPRO_TRACE_DIR")
    if env:
        return Path(env)
    from repro.experiments.store import default_store_root

    return default_store_root() / "traces"


def trace_key(spec: WorkloadSpec, options: PipelineOptions) -> str:
    """Content hash identifying one workload's captured trace pair.

    The trace stream is fully determined by the resolved spec (footprints,
    rates, seed, window lengths) and the pipeline options (PGO layout moves
    the PCs), so those — plus the schema version — are exactly what is
    hashed.  The simulator configuration is *not* part of the key: its
    ``workload_scale`` is already applied to the resolved spec, and nothing
    else about it reaches the generator.
    """
    return stable_hash(
        {
            "schema": TRACE_SCHEMA_VERSION,
            "spec": canonical_payload(spec),
            "options": canonical_payload(options),
        }
    )


# ------------------------------------------------------------- file format
def _geometry_arrays(trace: PackedTrace) -> dict[str, array]:
    """The geometry columns of one trace for :data:`GEOMETRY_LINE_SIZE`.

    Computed (and cached on the trace) at capture time, so the process that
    generated a trace pays the event scan once and every replayer — this
    process included — reads it back as raw bytes.
    """
    indices, pcs, flags, lines = trace.fetch_events(GEOMETRY_LINE_SIZE)
    return {
        "event_indices": indices,
        "event_pcs": pcs,
        "event_flags": flags,
        "event_lines": lines,
        "mem_lines": trace.mem_lines(GEOMETRY_LINE_SIZE),
    }


def write_trace_file(
    path: Path, warmup: PackedTrace, measured: PackedTrace, meta: dict
) -> None:
    """Serialise a (warm-up, measured) pair to ``path`` atomically."""
    segments = dict(zip(SEGMENTS, (warmup, measured)))
    geometries = {name: _geometry_arrays(trace) for name, trace in segments.items()}
    header = {
        "schema": TRACE_SCHEMA_VERSION,
        "byteorder": sys.byteorder,
        "meta": meta,
        "segments": [
            {
                "name": name,
                "length": len(trace),
                "columns": [
                    {
                        "name": column,
                        "typecode": typecode,
                        "itemsize": getattr(trace, column).itemsize,
                    }
                    for column, typecode in COLUMNS
                ],
                "geometry": {
                    "line_size": GEOMETRY_LINE_SIZE,
                    "events_length": len(geometries[name]["event_indices"]),
                    "columns": [
                        {
                            "name": column,
                            "typecode": typecode,
                            "itemsize": geometries[name][column].itemsize,
                        }
                        for column, typecode in GEOMETRY_COLUMNS
                    ],
                },
            }
            for name, trace in segments.items()
        ],
    }
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=path.name, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(MAGIC)
            handle.write(len(header_bytes).to_bytes(4, "little"))
            handle.write(header_bytes)
            for name, trace in segments.items():
                for column, _ in COLUMNS:
                    handle.write(getattr(trace, column).tobytes())
                geometry = geometries[name]
                for column, _ in GEOMETRY_COLUMNS:
                    handle.write(geometry[column].tobytes())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def _read_column(
    payload: bytes, offset: int, column: dict, length: int, byteorder: str
) -> tuple[array, int]:
    typecode, itemsize = column["typecode"], column["itemsize"]
    values = array(typecode)
    nbytes = itemsize * length
    chunk = payload[offset : offset + nbytes]
    if len(chunk) != nbytes:
        raise CaptureFormatError("truncated column data")
    if values.itemsize == itemsize:
        values.frombytes(chunk)
        if byteorder != sys.byteorder:
            values.byteswap()
    else:
        # Foreign platform widths: decode item-by-item (correct, just slow).
        values.extend(
            int.from_bytes(chunk[i : i + itemsize], byteorder)
            for i in range(0, nbytes, itemsize)
        )
    return values, offset + nbytes


def read_trace_file(path: Path) -> tuple[PackedTrace, PackedTrace, dict]:
    """Load a (warm-up, measured) pair written by :func:`write_trace_file`.

    Raises :class:`CaptureFormatError` on any structural problem; callers
    (the archive) turn that into a plain miss.
    """
    try:
        payload = path.read_bytes()
    except OSError as error:
        raise CaptureFormatError(f"unreadable trace file: {error}") from error
    if payload[: len(MAGIC)] != MAGIC:
        raise CaptureFormatError("bad magic")
    offset = len(MAGIC)
    if len(payload) < offset + 4:
        raise CaptureFormatError("truncated header length")
    header_len = int.from_bytes(payload[offset : offset + 4], "little")
    offset += 4
    try:
        header = json.loads(payload[offset : offset + header_len])
    except ValueError as error:
        raise CaptureFormatError(f"bad header: {error}") from error
    offset += header_len
    if header.get("schema") != TRACE_SCHEMA_VERSION:
        raise CaptureFormatError(f"schema mismatch: {header.get('schema')!r}")
    byteorder = header.get("byteorder", "little")
    if byteorder not in ("little", "big"):
        raise CaptureFormatError(f"unknown byteorder {byteorder!r}")
    # A damaged-but-JSON-valid header (wrong field types, missing keys, bad
    # typecodes) must stay inside the CaptureFormatError contract so the
    # archive treats it as a miss instead of crashing the run.
    try:
        segment_entries = {
            entry["name"]: entry for entry in header.get("segments", ())
        }
        if tuple(segment_entries) != SEGMENTS:
            raise CaptureFormatError(
                f"unexpected segments {tuple(segment_entries)!r}"
            )
        traces: list[PackedTrace] = []
        for name in SEGMENTS:
            entry = segment_entries[name]
            declared = [column["name"] for column in entry["columns"]]
            if declared != [column for column, _ in COLUMNS]:
                raise CaptureFormatError(f"unexpected columns {declared!r}")
            length = entry["length"]
            if not isinstance(length, int) or length < 0:
                raise CaptureFormatError(f"bad segment length {length!r}")
            trace = PackedTrace()
            for column in entry["columns"]:
                values, offset = _read_column(
                    payload, offset, column, length, byteorder
                )
                setattr(trace, column["name"], values)
            # Geometry columns: restored straight into the trace's caches so
            # replay skips the event scan and all shift/mask work.
            geometry = entry["geometry"]
            declared = [column["name"] for column in geometry["columns"]]
            if declared != [column for column, _ in GEOMETRY_COLUMNS]:
                raise CaptureFormatError(
                    f"unexpected geometry columns {declared!r}"
                )
            events_length = geometry["events_length"]
            if not isinstance(events_length, int) or events_length < 0:
                raise CaptureFormatError(
                    f"bad geometry events length {events_length!r}"
                )
            restored: dict[str, array] = {}
            for column in geometry["columns"]:
                column_length = (
                    length if column["name"] == "mem_lines" else events_length
                )
                values, offset = _read_column(
                    payload, offset, column, column_length, byteorder
                )
                restored[column["name"]] = values
            trace.adopt_geometry(
                geometry["line_size"],
                (
                    restored["event_indices"],
                    restored["event_pcs"],
                    restored["event_flags"],
                    restored["event_lines"],
                ),
                restored["mem_lines"],
            )
            traces.append(trace)
    except (KeyError, TypeError, ValueError, OverflowError) as error:
        raise CaptureFormatError(f"malformed header: {error}") from error
    if offset != len(payload):
        raise CaptureFormatError("trailing bytes after column data")
    return traces[0], traces[1], header.get("meta", {})


# ------------------------------------------------------------------ archive
class TraceArchive:
    """Content-addressed on-disk archive of captured packed traces.

    Safe to share between processes and pool workers for the same reason the
    result store is: writes are atomic renames, and two racing writers for
    one key produce byte-identical files (trace generation is
    deterministic).  Hit/miss/write counters are per-instance; the CLI
    reports them after each command.
    """

    def __init__(self, root: Path | str | None = None, refresh: bool = False):
        self.root = Path(root) if root is not None else default_trace_root()
        #: When set, every lookup misses but fresh captures are still written.
        self.refresh = refresh
        self.hits = 0
        self.misses = 0
        self.writes = 0
        #: Corrupted/truncated captures quarantined during lookups.
        self.corrupt = 0

    def stats(self) -> dict[str, int]:
        """Counter snapshot: ``{"hits", "misses", "writes", "corrupt"}``.

        Mirrors :meth:`repro.experiments.store.ResultStore.stats`; surfaced
        in CLI cache summaries and the ``repro serve`` ``/metrics`` payload.
        """
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "corrupt": self.corrupt,
        }

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.trace"

    def load(
        self, spec: WorkloadSpec, options: PipelineOptions
    ) -> Optional[tuple[PackedTrace, PackedTrace]]:
        """The captured (warm-up, measured) pair, or ``None`` on a miss."""
        if not self.refresh:
            path = self.path_for(trace_key(spec, options))
            if path.exists():
                try:
                    warmup, measured, _ = read_trace_file(path)
                except CaptureFormatError:
                    # Damaged capture: quarantine it next to the slot (the
                    # recapture's atomic rename lands cleanly, the bytes stay
                    # inspectable) and count it like the result store does.
                    self._quarantine(path)
                else:
                    self.hits += 1
                    return warmup, measured
        self.misses += 1
        return None

    def _quarantine(self, path: Path) -> None:
        target = path.with_suffix(".corrupt")
        try:
            os.replace(path, target)
        except OSError:  # pragma: no cover - racing workers, gone already
            return
        self.corrupt += 1

    def save(
        self,
        spec: WorkloadSpec,
        options: PipelineOptions,
        warmup: PackedTrace,
        measured: PackedTrace,
    ) -> Path:
        """Capture a (warm-up, measured) pair for ``spec`` (atomic)."""
        fire_point("trace.write")
        path = self.path_for(trace_key(spec, options))
        meta = {
            # The key inputs, echoed so archives are debuggable from a shell.
            "benchmark": spec.name,
            "warmup_instructions": len(warmup),
            "eval_instructions": len(measured),
            "options": canonical_payload(options),
        }
        write_trace_file(path, warmup, measured, meta)
        self.writes += 1
        return path

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceArchive({str(self.root)!r})"
