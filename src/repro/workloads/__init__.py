"""Synthetic workload substrate: specs, families, builder, capture, traces."""

from repro.workloads.behavior import ControlFlowModel, FunctionCall
from repro.workloads.capture import TraceArchive, trace_key
from repro.workloads.families import (
    WORKLOAD_FAMILIES,
    FamilyInfo,
    WorkloadFamilySpec,
    describe_families,
    family_names,
    get_family_info,
    is_family_token,
    resolve_workload,
)
from repro.workloads.builder import (
    DATA_REUSE_BASE,
    DATA_STREAM_BASE,
    SyntheticProgramBuilder,
    SyntheticWorkload,
)
from repro.workloads.profiling import PROFILE_TRIP_MULTIPLIER, collect_profile
from repro.workloads.spec import (
    PROXY_BENCHMARK_NAMES,
    PROXY_BENCHMARKS,
    SYSTEM_COMPONENT_NAMES,
    SYSTEM_COMPONENTS,
    InputSet,
    WorkloadSpec,
    all_proxy_specs,
    all_system_specs,
    get_spec,
)
from repro.workloads.tracegen import TraceGenerator

__all__ = [
    "WorkloadSpec",
    "InputSet",
    "WORKLOAD_FAMILIES",
    "FamilyInfo",
    "WorkloadFamilySpec",
    "describe_families",
    "family_names",
    "get_family_info",
    "is_family_token",
    "resolve_workload",
    "TraceArchive",
    "trace_key",
    "PROXY_BENCHMARKS",
    "PROXY_BENCHMARK_NAMES",
    "SYSTEM_COMPONENTS",
    "SYSTEM_COMPONENT_NAMES",
    "get_spec",
    "all_proxy_specs",
    "all_system_specs",
    "SyntheticProgramBuilder",
    "SyntheticWorkload",
    "DATA_STREAM_BASE",
    "DATA_REUSE_BASE",
    "ControlFlowModel",
    "FunctionCall",
    "collect_profile",
    "PROFILE_TRIP_MULTIPLIER",
    "TraceGenerator",
]
