"""Parametric workload families: an open grid on the workload axis.

The paper's catalog (:mod:`repro.workloads.spec`) is a fixed set of fifteen
hand-written proxy/system specs.  Every Scenario/Session experiment can grid
freely over *policies* and *configurations*, but until this module the
workload axis had nothing new to offer.  A **workload family** closes that
gap: it is a named, parametric generator that synthesizes a
:class:`~repro.workloads.spec.WorkloadSpec` for one behaviour archetype —

* ``streaming``      — sequential scans over a large buffer, tiny hot loop;
* ``pointer-chase``  — dependent loads walking a resident linked structure;
* ``zipf``           — data accesses Zipf-skewed over a footprint (``alpha``
  shapes how much of the footprint is hot);
* ``phased``         — code that migrates between hot phases, so the hot set
  seen by the L2 changes over time;
* ``interleave``     — several programs round-robin on one core, built on the
  catalog specs via the spec override hooks (footprints add up, reuse
  distances stretch).

Families mirror the replacement-policy registry
(:mod:`repro.cache.replacement.spec`) exactly: each is a registry entry with
typed, defaulted parameters, addressable from code and the CLI as
``name:param=value,param=value`` (``WorkloadFamilySpec.parse("zipf:alpha=1.2")``,
``repro run table3 --workload zipf:alpha=1.2``).  Synthesis is a pure
function of the canonical parameters, so a family token denotes the same
trace everywhere — which is what lets family runs share the result store and
the trace archive (:mod:`repro.workloads.capture`) across processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Union

from repro.common.errors import ConfigurationError, WorkloadError
from repro.common.params import TypedParam, parse_spec_token, render_param_value
from repro.workloads.spec import KB, WorkloadSpec, get_spec


@dataclass(frozen=True)
class FamilyParam(TypedParam):
    """One typed parameter a workload-family generator accepts."""

    kind: str = "workload family"


@dataclass(frozen=True)
class FamilyInfo:
    """Registry entry for one workload family."""

    name: str
    description: str
    synthesize: Callable[..., WorkloadSpec]
    params: tuple[FamilyParam, ...] = ()
    aliases: tuple[str, ...] = ()

    def param(self, name: str) -> FamilyParam:
        for param in self.params:
            if param.name == name:
                return param
        valid = ", ".join(p.name for p in self.params) or "(none)"
        raise ConfigurationError(
            f"workload family {self.name!r} has no parameter {name!r}; "
            f"valid parameters: {valid}"
        )

    def defaults(self) -> dict[str, Any]:
        return {param.name: param.default for param in self.params}


def _functions_for(kb: float, blocks_per_function: int, block_bytes: int = 64) -> int:
    """How many functions of the given shape cover ``kb`` of code."""
    return max(2, round(kb * KB / (blocks_per_function * block_bytes)))


# --------------------------------------------------------------- the families
def _streaming(
    footprint_kb: int,
    reuse_kb: int,
    access_rate: float,
    hot_kb: int,
    instructions: int,
    warmup: int,
    seed: int,
) -> WorkloadSpec:
    """Sequential scans over ``footprint_kb`` with a compact hot loop."""
    return WorkloadSpec(
        name="",
        category="family",
        description="synthetic streaming-scan workload",
        hot_functions=_functions_for(hot_kb, 8),
        warm_functions=6,
        cold_functions=16,
        blocks_per_hot_function=8,
        internal_cold_blocks=2,
        data_access_rate=access_rate,
        data_stream_kb=max(footprint_kb, 1),
        data_reuse_kb=max(reuse_kb, 1),
        data_stream_fraction=0.85,
        branch_entropy=0.04,
        eval_instructions=instructions,
        warmup_instructions=warmup,
        seed=seed,
    )


def _pointer_chase(
    footprint_kb: int,
    access_rate: float,
    depth: int,
    hot_kb: int,
    instructions: int,
    warmup: int,
    seed: int,
) -> WorkloadSpec:
    """Dependent loads walking a ``footprint_kb`` resident structure.

    ``depth`` is the dependent-chain length between branches; it maps onto
    the backend stall annotations (longer chains stall the core harder) and
    is capped so the stall rate stays a probability.
    """
    if depth < 1:
        raise ConfigurationError(
            f"workload family 'pointer-chase': depth must be >= 1, got {depth}"
        )
    return WorkloadSpec(
        name="",
        category="family",
        description="synthetic pointer-chasing workload",
        hot_functions=_functions_for(hot_kb, 10),
        warm_functions=8,
        cold_functions=24,
        data_access_rate=access_rate,
        data_stream_kb=max(footprint_kb // 8, 1),
        data_reuse_kb=max(footprint_kb, 1),
        data_stream_fraction=0.05,
        branch_entropy=0.12,
        depend_stall_rate=min(0.06 * depth, 0.9),
        depend_stall_cycles=2 + depth,
        eval_instructions=instructions,
        warmup_instructions=warmup,
        seed=seed,
    )


def _zipf(
    alpha: float,
    footprint_kb: int,
    access_rate: float,
    hot_kb: int,
    instructions: int,
    warmup: int,
    seed: int,
) -> WorkloadSpec:
    """Zipf(``alpha``)-skewed data accesses over ``footprint_kb``.

    The footprint is modelled as 1 kB buckets with weight ``(i+1)**-alpha``.
    The *reused* region is the smallest head of that ranking carrying at
    least two thirds of the access mass; the remaining tail is streamed.
    High ``alpha`` concentrates the mass into a cache-resident head, low
    ``alpha`` degenerates towards a uniform sweep of the whole footprint —
    the skew knob the fixed catalog never exposed.
    """
    if alpha < 0:
        raise ConfigurationError(
            f"workload family 'zipf': alpha must be >= 0, got {alpha}"
        )
    if footprint_kb < 2:
        raise ConfigurationError(
            f"workload family 'zipf': footprint_kb must be >= 2, got {footprint_kb}"
        )
    weights = [(i + 1) ** -alpha for i in range(footprint_kb)]
    total = sum(weights)
    cumulative, head = 0.0, footprint_kb
    for index, weight in enumerate(weights):
        cumulative += weight
        if cumulative >= total * (2.0 / 3.0):
            head = index + 1
            break
    head = min(head, footprint_kb - 1)
    tail_mass = 1.0 - sum(weights[:head]) / total
    return WorkloadSpec(
        name="",
        category="family",
        description="synthetic zipf-skewed data workload",
        hot_functions=_functions_for(hot_kb, 10),
        warm_functions=10,
        cold_functions=32,
        data_access_rate=access_rate,
        data_stream_kb=max(footprint_kb - head, 1),
        data_reuse_kb=head,
        data_stream_fraction=min(max(tail_mass, 0.0), 1.0),
        eval_instructions=instructions,
        warmup_instructions=warmup,
        seed=seed,
    )


def _phased(
    phases: int,
    hot_kb: int,
    cold_kb: int,
    visit_probability: float,
    instructions: int,
    warmup: int,
    seed: int,
) -> WorkloadSpec:
    """Code migrating between ``phases`` hot working sets.

    Each phase is a segment of the outer iteration; a large *occasional*
    class with per-iteration visit probability makes the hot set seen by the
    L2 drift between iterations (long reuse-distance tail), which is the
    regime where insertion-priority policies separate from recency ones.
    """
    if phases < 1:
        raise ConfigurationError(
            f"workload family 'phased': phases must be >= 1, got {phases}"
        )
    return WorkloadSpec(
        name="",
        category="family",
        description="synthetic phased hot/cold-code workload",
        hot_functions=_functions_for(hot_kb, 10),
        warm_functions=12,
        cold_functions=_functions_for(cold_kb, 6),
        blocks_per_cold_function=6,
        internal_cold_blocks=4,
        segments_per_iteration=phases,
        hot_core_fraction=0.15,
        hot_occasional_fraction=min(0.2 + 0.1 * phases, 0.7),
        occasional_visit_probability=visit_probability,
        data_access_rate=0.24,
        data_stream_kb=24,
        data_reuse_kb=8,
        data_stream_fraction=0.3,
        eval_instructions=instructions,
        warmup_instructions=warmup,
        seed=seed,
    )


def _interleave(
    programs: int,
    base: str,
    instructions: int,
    warmup: int,
    seed: int,
) -> WorkloadSpec:
    """``programs`` copies of a catalog workload round-robin on one core.

    Built on the spec override hooks: code and data footprints add up across
    the co-running programs, each outer iteration gains one segment per
    program (the scheduler slice), and the occasional-visit probability
    drops, stretching every hot line's L2 reuse distance — the classic
    multi-programmed pressure the single-program catalog cannot express.
    """
    if programs < 1:
        raise ConfigurationError(
            f"workload family 'interleave': programs must be >= 1, got {programs}"
        )
    spec = get_spec(base)
    return spec.with_overrides(
        category="family",
        description=f"{programs}-program interleave of {base!r}",
        hot_functions=spec.hot_functions * programs,
        warm_functions=spec.warm_functions * programs,
        cold_functions=spec.cold_functions * programs,
        data_stream_kb=spec.data_stream_kb * programs,
        data_reuse_kb=spec.data_reuse_kb * programs,
        segments_per_iteration=spec.segments_per_iteration * programs,
        occasional_visit_probability=(
            spec.occasional_visit_probability / programs
        ),
        eval_instructions=instructions,
        warmup_instructions=warmup,
        seed=seed,
    )


_INSTRUCTIONS = FamilyParam(
    "instructions", int, 60_000, "measured-window length in instructions"
)
_WARMUP = FamilyParam("warmup", int, 15_000, "warm-up prefix in instructions")
_SEED = FamilyParam("seed", int, 701, "deterministic generator seed")
_ACCESS_RATE = FamilyParam(
    "access_rate", float, 0.35, "fraction of instructions with a data operand"
)
_HOT_KB = FamilyParam("hot_kb", int, 8, "hot code footprint in kB")

#: Every registered workload family, in catalog order.
WORKLOAD_FAMILIES: dict[str, FamilyInfo] = {
    info.name: info
    for info in (
        FamilyInfo(
            "streaming",
            "sequential scans over a large buffer, compact hot loop",
            _streaming,
            params=(
                FamilyParam("footprint_kb", int, 96, "streamed buffer size in kB"),
                FamilyParam("reuse_kb", int, 8, "reused-region size in kB"),
                _ACCESS_RATE,
                _HOT_KB,
                _INSTRUCTIONS,
                _WARMUP,
                _SEED,
            ),
            aliases=("stream",),
        ),
        FamilyInfo(
            "pointer-chase",
            "dependent loads walking a resident linked structure",
            _pointer_chase,
            params=(
                FamilyParam("footprint_kb", int, 32, "chased structure size in kB"),
                _ACCESS_RATE,
                FamilyParam(
                    "depth", int, 4, "dependent-chain length between branches"
                ),
                _HOT_KB,
                _INSTRUCTIONS,
                _WARMUP,
                _SEED,
            ),
            aliases=("pointer_chase", "chase"),
        ),
        FamilyInfo(
            "zipf",
            "zipf-skewed data accesses over a footprint (alpha = skew)",
            _zipf,
            params=(
                FamilyParam("alpha", float, 1.2, "zipf skew exponent"),
                FamilyParam("footprint_kb", int, 64, "total data footprint in kB"),
                _ACCESS_RATE,
                _HOT_KB,
                _INSTRUCTIONS,
                _WARMUP,
                _SEED,
            ),
        ),
        FamilyInfo(
            "phased",
            "code migrating between hot phases (drifting L2 hot set)",
            _phased,
            params=(
                FamilyParam("phases", int, 3, "hot phases per outer iteration"),
                FamilyParam("hot_kb", int, 16, "hot code footprint in kB"),
                FamilyParam("cold_kb", int, 48, "cold code footprint in kB"),
                FamilyParam(
                    "visit_probability",
                    float,
                    0.35,
                    "per-iteration probability an occasional phase runs",
                ),
                _INSTRUCTIONS,
                _WARMUP,
                _SEED,
            ),
        ),
        FamilyInfo(
            "interleave",
            "N catalog programs round-robin on one core (footprints add up)",
            _interleave,
            params=(
                FamilyParam("programs", int, 2, "co-running program count"),
                FamilyParam(
                    "base", str, "sqlite", "catalog workload to interleave"
                ),
                _INSTRUCTIONS,
                _WARMUP,
                _SEED,
            ),
            aliases=("multiprogram",),
        ),
    )
}

#: alias -> canonical name, for lookups.
_ALIASES: dict[str, str] = {
    alias: info.name
    for info in WORKLOAD_FAMILIES.values()
    for alias in info.aliases
}


def family_names() -> tuple[str, ...]:
    """Canonical registered family names, in catalog order."""
    return tuple(WORKLOAD_FAMILIES)


def get_family_info(name: str) -> FamilyInfo:
    """Resolve a (possibly aliased) family name to its registry entry."""
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    info = WORKLOAD_FAMILIES.get(key)
    if info is None:
        raise ConfigurationError(
            f"unknown workload family {name!r}; known families: "
            f"{', '.join(sorted(WORKLOAD_FAMILIES))}"
        )
    return info


def is_family_token(text: str) -> bool:
    """Whether ``text`` names a workload family (bare or parameterised)."""
    if not isinstance(text, str) or not text.strip():
        return False
    name = text.strip().partition(":")[0].strip().lower()
    return name in WORKLOAD_FAMILIES or name in _ALIASES


@dataclass(frozen=True)
class WorkloadFamilySpec:
    """A workload family plus its (typed, validated) parameters.

    The exact mirror of :class:`~repro.cache.replacement.spec.PolicySpec` on
    the workload axis: ``params`` is a name-sorted tuple of ``(name, value)``
    pairs, construction validates eagerly against the family registry, and
    :meth:`canonical` renders a stable token that round-trips through
    :meth:`parse`.  :meth:`synthesize` produces the concrete
    :class:`~repro.workloads.spec.WorkloadSpec`, whose ``name`` is the
    canonical token — so family runs label reports, result-store entries and
    trace-archive keys consistently everywhere.
    """

    name: str
    params: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        info = get_family_info(self.name)
        coerced = tuple(
            sorted(
                (info.param(key).name, info.param(key).coerce(value, info.name))
                for key, value in dict(self.params).items()
            )
        )
        object.__setattr__(self, "name", info.name)
        object.__setattr__(self, "params", coerced)

    # --------------------------------------------------------- constructions
    @classmethod
    def of(
        cls, value: "WorkloadFamilySpec | str", **overrides: Any
    ) -> "WorkloadFamilySpec":
        """Coerce a family name / CLI token / spec into a family spec."""
        if isinstance(value, WorkloadFamilySpec):
            if overrides:
                merged = dict(value.params)
                merged.update(overrides)
                return cls(value.name, tuple(merged.items()))
            return value
        if isinstance(value, str):
            spec = cls.parse(value)
            if overrides:
                return cls.of(spec, **overrides)
            return spec
        raise ConfigurationError(
            f"cannot interpret {value!r} as a workload family"
        )

    @classmethod
    def parse(cls, text: str) -> "WorkloadFamilySpec":
        """Parse the CLI syntax ``name`` or ``name:param=value,param=value``."""
        name, params = parse_spec_token(text, kind="workload")
        return cls(name, tuple(params.items()))

    # ------------------------------------------------------------- accessors
    @property
    def info(self) -> FamilyInfo:
        return get_family_info(self.name)

    @property
    def kwargs(self) -> dict[str, Any]:
        """Generator keyword arguments (non-default parameters only)."""
        return dict(self.params)

    def canonical(self) -> str:
        """Stable text form: ``name`` or ``name:a=1,b=2`` (params sorted)."""
        if not self.params:
            return self.name
        rendered = ",".join(
            f"{key}={render_param_value(value)}" for key, value in self.params
        )
        return f"{self.name}:{rendered}"

    def __str__(self) -> str:
        return self.canonical()

    # ------------------------------------------------------------- synthesis
    def synthesize(self) -> WorkloadSpec:
        """The concrete workload spec this family token denotes.

        Pure and deterministic: equal canonical tokens synthesize equal
        specs, in this process or any other — the property the result store
        and the trace archive key on.
        """
        info = self.info
        kwargs = info.defaults()
        kwargs.update(self.kwargs)
        return info.synthesize(**kwargs).with_overrides(name=self.canonical())


def resolve_workload(
    token: Union[str, WorkloadSpec, "WorkloadFamilySpec"],
) -> WorkloadSpec:
    """Resolve any workload token to a concrete spec.

    Accepts a full :class:`~repro.workloads.spec.WorkloadSpec` (returned
    as-is), a :class:`WorkloadFamilySpec` or family CLI token
    (``"zipf:alpha=1.2"`` — synthesized), or a catalog benchmark name
    (``"sqlite"`` — looked up).  Unknown names raise with both catalogs'
    valid choices via :func:`~repro.workloads.spec.get_spec`.
    """
    if isinstance(token, WorkloadSpec):
        return token
    if isinstance(token, WorkloadFamilySpec):
        return token.synthesize()
    if isinstance(token, str) and is_family_token(token):
        return WorkloadFamilySpec.parse(token).synthesize()
    try:
        return get_spec(token)
    except WorkloadError as error:
        raise WorkloadError(
            f"{error}; workload families (see `repro workloads`): "
            f"{', '.join(WORKLOAD_FAMILIES)}"
        ) from None


def describe_families() -> list[tuple[FamilyInfo, Optional[str]]]:
    """(info, rendered-parameter summary) rows for ``repro workloads``."""
    rows: list[tuple[FamilyInfo, Optional[str]]] = []
    for info in WORKLOAD_FAMILIES.values():
        if info.params:
            summary = ", ".join(
                f"{p.name}:{p.type.__name__}={render_param_value(p.default)}"
                for p in info.params
            )
        else:
            summary = None
        rows.append((info, summary))
    return rows
