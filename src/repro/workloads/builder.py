"""Synthetic program builder.

Turns a :class:`~repro.workloads.spec.WorkloadSpec` into a
:class:`~repro.compiler.ir.Program` plus the execution metadata the trace
generator and profiler need (which blocks form each function's executed hot
path, each hot function's inner-loop trip count, and the data-region layout).

Structure of a generated function (original, pre-PGO order)::

    [exec_0, cold_0, exec_1, cold_1, ..., exec_k, cold_k, exec_{k+1}, ...]

Executed blocks are interleaved with never-executed "internal cold" blocks
(error paths, asserts).  In the non-PGO binary the executed path is therefore
spread over roughly twice as many cache lines; the PGO layout reorders the
executed path to the front of the function, which is how the synthetic
workloads reproduce the spatial-locality gains of Figure 2.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.compiler.ir import BasicBlock, BlockId, Function, Program
from repro.workloads.spec import KB, WorkloadSpec

#: Virtual base of the streaming data region.
DATA_STREAM_BASE = 0x8000_0000
#: Virtual base of the reused data region.
DATA_REUSE_BASE = 0xA000_0000


@dataclass
class SyntheticWorkload:
    """A generated program plus the metadata needed to execute it."""

    spec: WorkloadSpec
    program: Program
    hot_function_names: list[str]
    warm_function_names: list[str]
    cold_function_names: list[str]
    #: Per function: the executed (hot-path) blocks, in execution order.
    executed_blocks: dict[str, list[BlockId]]
    #: Per hot function: its inner-loop trip count (skewed distribution).
    hot_trip_counts: dict[str, int]
    data_stream_base: int = DATA_STREAM_BASE
    data_reuse_base: int = DATA_REUSE_BASE

    @property
    def data_stream_bytes(self) -> int:
        return self.spec.data_stream_kb * KB

    @property
    def data_reuse_bytes(self) -> int:
        return self.spec.data_reuse_kb * KB

    def executed_blocks_of(self, function_name: str) -> list[BlockId]:
        return self.executed_blocks[function_name]

    def trip_count(self, function_name: str) -> int:
        return self.hot_trip_counts.get(function_name, 1)


class SyntheticProgramBuilder:
    """Builds deterministic synthetic programs from workload specs."""

    def build(self, spec: WorkloadSpec) -> SyntheticWorkload:
        """Generate the program and execution metadata for ``spec``."""
        rng = random.Random(spec.seed)
        functions: list[Function] = []
        executed: dict[str, list[BlockId]] = {}
        hot_names: list[str] = []
        warm_names: list[str] = []
        cold_names: list[str] = []
        trip_counts: dict[str, int] = {}

        for index in range(spec.hot_functions):
            name = f"hot_{index:03d}"
            function, exec_blocks = self._build_interleaved_function(
                name,
                self._jitter(rng, spec.blocks_per_hot_function),
                self._jitter(rng, spec.internal_cold_blocks, minimum=0),
                spec,
            )
            functions.append(function)
            executed[name] = exec_blocks
            hot_names.append(name)
            trip_counts[name] = self._trip_count(rng, spec.max_hot_trip_count)

        for index in range(spec.warm_functions):
            name = f"warm_{index:03d}"
            function, exec_blocks = self._build_interleaved_function(
                name,
                self._jitter(rng, spec.blocks_per_warm_function),
                self._jitter(rng, spec.internal_cold_blocks, minimum=0),
                spec,
            )
            functions.append(function)
            executed[name] = exec_blocks
            warm_names.append(name)

        for index in range(spec.cold_functions):
            name = f"cold_{index:03d}"
            blocks = [
                BasicBlock(BlockId(name, i), spec.block_bytes)
                for i in range(self._jitter(rng, spec.blocks_per_cold_function))
            ]
            functions.append(Function(name=name, blocks=blocks))
            executed[name] = [block.block_id for block in blocks]
            cold_names.append(name)

        program = Program(
            name=spec.name,
            functions=functions,
            external_code_bytes=spec.external_code_kb * KB,
        )
        return SyntheticWorkload(
            spec=spec,
            program=program,
            hot_function_names=hot_names,
            warm_function_names=warm_names,
            cold_function_names=cold_names,
            executed_blocks=executed,
            hot_trip_counts=trip_counts,
        )

    # ------------------------------------------------------------- internals
    @staticmethod
    def _jitter(rng: random.Random, base: int, minimum: int = 1) -> int:
        """Vary a block count by +/-40% so function sizes are heterogeneous.

        Uniform function sizes resonate with the cache set indexing (every
        function's hot path lands in the same subset of sets), which real
        programs do not exhibit; jitter keeps the aggregate footprint at the
        spec's value while spreading lines across all sets.
        """
        if base <= 0:
            return max(base, minimum)
        jittered = int(round(base * rng.uniform(0.6, 1.4)))
        return max(jittered, minimum)

    @staticmethod
    def _trip_count(rng: random.Random, max_trip: int) -> int:
        """Skewed inner-loop trip count in [1, max_trip] (long-tailed)."""
        if max_trip == 1:
            return 1
        draw = rng.random()
        return max(1, int(round(1 + (max_trip - 1) * draw * draw)))

    @staticmethod
    def _build_interleaved_function(
        name: str,
        executed_blocks: int,
        internal_cold_blocks: int,
        spec: WorkloadSpec,
    ) -> tuple[Function, list[BlockId]]:
        """Build a function whose hot path is interleaved with cold blocks.

        Internal cold blocks (error paths, asserts) are half a cache line so
        that in the original (non-PGO) order the executed path straddles extra
        lines; PGO's block placement moves the executed blocks to the front of
        the function and recovers the spatial locality — the Figure 2 effect.
        """
        blocks: list[BasicBlock] = []
        executed_ids: list[BlockId] = []
        cold_bytes = max(spec.block_bytes // 2, 4)
        cold_remaining = internal_cold_blocks
        index = 0
        for position in range(executed_blocks):
            block = BasicBlock(BlockId(name, index), spec.block_bytes)
            blocks.append(block)
            executed_ids.append(block.block_id)
            index += 1
            if cold_remaining > 0 and position < executed_blocks - 1:
                blocks.append(BasicBlock(BlockId(name, index), cold_bytes))
                index += 1
                cold_remaining -= 1
        for _ in range(cold_remaining):
            blocks.append(BasicBlock(BlockId(name, index), cold_bytes))
            index += 1
        return Function(name=name, blocks=blocks), executed_ids
