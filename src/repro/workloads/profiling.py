"""Instrumentation-profile collection for synthetic workloads.

This models step 3 of Figure 4: running the instrumented ELF1 on a *training*
input and counting basic-block executions.  Real training runs execute for
seconds to minutes (billions of instructions); the simulated evaluation window
is only ~10^5 instructions, so the profiler replays the control-flow model for
``training_iterations`` outer iterations and scales the per-call counts by
``PROFILE_TRIP_MULTIPLIER`` — standing in for the much longer loop trip counts
a full training run would observe.  The scaling does not change which blocks
are counted, only the magnitude gap between hot and non-hot counters, which is
what the Eq. 1/2 percentile thresholds key on.
"""

from __future__ import annotations

from repro.compiler.profile import InstrumentationProfile
from repro.workloads.behavior import ControlFlowModel
from repro.workloads.builder import SyntheticWorkload
from repro.workloads.spec import InputSet

#: Stand-in for the longer loop trip counts of a full-length training run.
PROFILE_TRIP_MULTIPLIER = 64


def collect_profile(
    workload: SyntheticWorkload,
    iterations: int | None = None,
    trip_multiplier: int = PROFILE_TRIP_MULTIPLIER,
) -> InstrumentationProfile:
    """Run the training input and return the instrumentation profile."""
    spec = workload.spec
    if iterations is None:
        iterations = spec.training_iterations
    if iterations <= 0:
        raise ValueError("profile collection needs at least one iteration")
    if trip_multiplier <= 0:
        raise ValueError("trip_multiplier must be positive")

    model = ControlFlowModel(workload, InputSet.TRAINING)
    profile = InstrumentationProfile(program_name=spec.name)
    for _ in range(iterations):
        for call in model.one_iteration():
            if call.kind == "external" or call.function_name is None:
                continue
            blocks = workload.executed_blocks_of(call.function_name)
            if call.kind == "hot":
                count = workload.trip_count(call.function_name) * trip_multiplier
            else:
                count = 1
            for block_id in blocks:
                profile.record(block_id, count)
    return profile
