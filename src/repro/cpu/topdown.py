"""Top-Down cycle accounting.

The paper's motivation figures (Figure 1 and Figure 2) use the Top-Down
methodology [Yasin, ISPASS 2014] to attribute cycles to useful work
(``retire``) or to stalls in the different CPU stages.  The categories here
match Figure 2's legend: ``ifetch`` (instruction cache misses), ``mispred.``
(branch misprediction recovery), ``depend`` (data dependencies), ``issue``
(saturated issue queues), ``mem`` (backend waiting on data from caches/DRAM)
and ``other``.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass
class TopDownBreakdown:
    """Cycles attributed to each Top-Down category."""

    retire: float = 0.0
    ifetch: float = 0.0
    mispred: float = 0.0
    depend: float = 0.0
    issue: float = 0.0
    mem: float = 0.0
    other: float = 0.0

    CATEGORIES = ("retire", "ifetch", "mispred", "depend", "issue", "mem", "other")

    @property
    def total_cycles(self) -> float:
        return sum(getattr(self, name) for name in self.CATEGORIES)

    @property
    def frontend_bound(self) -> float:
        """Fraction of cycles lost in the frontend (ifetch + mispredict)."""
        total = self.total_cycles
        if total == 0:
            return 0.0
        return (self.ifetch + self.mispred) / total

    def fraction(self, category: str) -> float:
        """Fraction of total cycles spent in ``category``."""
        if category not in self.CATEGORIES:
            raise KeyError(f"unknown Top-Down category {category!r}")
        total = self.total_cycles
        if total == 0:
            return 0.0
        return getattr(self, category) / total

    def fractions(self) -> dict[str, float]:
        """All category fractions (sums to 1.0 for a non-empty breakdown)."""
        total = self.total_cycles
        if total == 0:
            return {name: 0.0 for name in self.CATEGORIES}
        return {name: getattr(self, name) / total for name in self.CATEGORIES}

    def add(self, category: str, cycles: float) -> None:
        """Accumulate cycles into a category."""
        if category not in self.CATEGORIES:
            raise KeyError(f"unknown Top-Down category {category!r}")
        if cycles < 0:
            raise ValueError(f"cannot add negative cycles ({cycles})")
        setattr(self, category, getattr(self, category) + cycles)

    def merge(self, other: "TopDownBreakdown") -> "TopDownBreakdown":
        """Return a new breakdown summing this one with ``other``."""
        merged = TopDownBreakdown()
        for f in fields(self):
            setattr(merged, f.name, getattr(self, f.name) + getattr(other, f.name))
        return merged

    def scaled(self, factor: float) -> "TopDownBreakdown":
        """Return a copy with every category multiplied by ``factor``."""
        scaled = TopDownBreakdown()
        for f in fields(self):
            setattr(scaled, f.name, getattr(self, f.name) * factor)
        return scaled
