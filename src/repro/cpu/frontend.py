"""CPU frontend: instruction fetch, decoupled (pseudo-FDIP) fetch, starvation.

The fetch engine is responsible for three things:

* issuing demand instruction fetches (one per new cache line touched by the
  PC stream) through the MMU and cache hierarchy;
* modelling the *pseudo-FDIP* decoupled frontend of Section 4.1: the fetch
  target queue runs ahead of decode along the predicted path, so a fixed
  number of cycles of each fetch's latency is hidden (``fdip_lead_cycles``).
  FDIP is modelled as latency hiding rather than as separate prefetch
  requests: in a trace-driven simulator the predicted path equals the executed
  path for correctly-predicted branches, so run-ahead changes *when* a line is
  requested, not *which* lines enter the cache — and wrong-path pollution is
  explicitly not modelled, exactly as the paper states;
* recording which instruction lines caused *decode starvation* (a demand miss
  that had to be serviced beyond the L2), which is the metadata Emissary's
  replacement policy consumes and which Figure 7 calls "costly instruction
  misses".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.hierarchy import CacheHierarchy
from repro.common.addressing import CACHE_LINE_SIZE, line_address
from repro.common.request import AccessResult, AccessType, MemoryRequest
from repro.common.translation import AddressTranslator, IdentityTranslator


@dataclass
class FrontendConfig:
    """Fetch engine configuration."""

    #: Whether the decoupled pseudo-FDIP frontend is enabled at all.
    fdip_enabled: bool = True
    #: Cycles of fetch latency the decoupled frontend hides by running ahead
    #: of decode along the predicted path.
    fdip_lead_cycles: float = 8.0
    #: Latency (cycles) the fetch/decode buffer can absorb without starving
    #: decode; anything above this (plus the FDIP lead) is an ifetch stall.
    fetch_buffer_slack: int = 3
    #: Maximum number of distinct starved lines remembered for Emissary hints.
    starvation_table_entries: int = 4096

    def validate(self) -> None:
        if self.fdip_lead_cycles < 0:
            raise ValueError("fdip_lead_cycles must be non-negative")
        if self.fetch_buffer_slack < 0:
            raise ValueError("fetch_buffer_slack must be non-negative")
        if self.starvation_table_entries <= 0:
            raise ValueError("starvation_table_entries must be positive")


@dataclass
class FrontendStats:
    """Counters kept by the fetch engine."""

    demand_fetches: int = 0
    starvation_events: int = 0
    ifetch_stall_cycles: float = 0.0


@dataclass
class FetchOutcome:
    """Result of fetching one instruction cache line."""

    stall_cycles: float
    result: AccessResult
    caused_starvation: bool


class FetchEngine:
    """Demand fetch + pseudo-FDIP lead + Emissary starvation tracking."""

    def __init__(
        self,
        hierarchy: CacheHierarchy,
        translator: AddressTranslator | None = None,
        config: FrontendConfig | None = None,
        line_size: int = CACHE_LINE_SIZE,
        core: int = 0,
    ) -> None:
        self.hierarchy = hierarchy
        self.translator = translator or IdentityTranslator()
        self.config = config or FrontendConfig()
        self.config.validate()
        self.line_size = line_size
        #: Issuing core index, stamped into every request (multi-core mode).
        self.core = core
        self.stats = FrontendStats()
        #: Virtual line addresses whose demand miss starved decode; requests
        #: to these lines carry Emissary's starvation hint when refetched.
        self._starved_lines: dict[int, bool] = {}
        #: Per-virtual-line cache of ``(translated request, physical line
        #: number)`` pairs used by the fast path.  ``MemoryRequest`` is
        #: immutable and the translation of a line never changes once the page
        #: is mapped, so a cached request is value-identical to a freshly
        #: built one; entries are dropped whenever the line's starvation hint
        #: changes.
        self._request_cache: dict[int, tuple[MemoryRequest, int]] = {}
        #: Fetch latency hidden from decode (buffer slack + FDIP run-ahead),
        #: hoisted for the fast path; the config is treated as frozen once
        #: the engine is built.
        self._hidden_latency = float(self.config.fetch_buffer_slack)
        if self.config.fdip_enabled:
            self._hidden_latency += self.config.fdip_lead_cycles
        self._line_shift = line_size.bit_length() - 1
        #: Per-virtual-line accumulated demand ifetch stall cycles and miss
        #: counts, used by the costly-miss coverage analysis (Figure 7).
        self.line_stall_cycles: dict[int, float] = {}
        self.line_miss_counts: dict[int, int] = {}
        #: The fetch fast path as a closure over stable engine state (stats
        #: and the per-line maps are reset in place).
        self.fetch_line_fast = self._make_fetch_fast()

    # ----------------------------------------------------------------- fetch
    def fetch_line(self, vaddr: int) -> FetchOutcome:
        """Issue a demand fetch for the line containing ``vaddr``."""
        vline = line_address(vaddr, self.line_size)
        paddr, temperature = self.translator.translate_instruction(vline)
        request = MemoryRequest(
            address=paddr,
            access_type=AccessType.INSTRUCTION_FETCH,
            pc=vline,
            temperature=temperature,
            starvation_hint=self._starved_lines.get(vline, False),
            core=self.core,
        )
        result = self.hierarchy.access_instruction(request)
        self.stats.demand_fetches += 1

        hidden = self.config.fetch_buffer_slack
        if self.config.fdip_enabled:
            hidden += self.config.fdip_lead_cycles
        stall = max(0.0, float(result.latency) - hidden)
        caused_starvation = result.l2_miss
        if caused_starvation:
            self._remember_starvation(vline)
            self.stats.starvation_events += 1
        if stall > 0:
            self.stats.ifetch_stall_cycles += stall
            self.line_stall_cycles[vline] = self.line_stall_cycles.get(vline, 0.0) + stall
            self.line_miss_counts[vline] = self.line_miss_counts.get(vline, 0) + 1
        return FetchOutcome(
            stall_cycles=stall, result=result, caused_starvation=caused_starvation
        )

    def _make_fetch_fast(self):
        """Build the resident-line fetch fast path as a closure.

        Used by the packed-trace replay loop: the translated
        :class:`MemoryRequest` is cached per line (with its physical line
        number) and the hierarchy is entered through its L1-hit fast path, so
        a repeat fetch of a resident line costs two dict lookups instead of
        three object allocations and a full hierarchy walk.  All simulation
        state transitions (cache statistics, replacement/prefetcher state,
        starvation tracking, per-line stall maps) are identical to
        :meth:`fetch_line`; the one observable difference is that the
        translator is consulted once per line instead of once per fetch, so
        MMU *translation counters* (never simulation results) read lower than
        on the record path.  Signature: ``fetch_line_fast(vline) -> stall``
        for an already line-aligned virtual address.
        """
        request_cache = self._request_cache
        translate = self.translator.translate_instruction
        access_fast = self.hierarchy.access_instruction_fast
        stats = self.stats
        starved_lines = self._starved_lines
        remember = self._remember_starvation
        line_stall_cycles = self.line_stall_cycles
        line_miss_counts = self.line_miss_counts
        hidden_latency = self._hidden_latency
        line_shift = self._line_shift
        core = self.core

        def fetch_line_fast(vline: int) -> float:
            cached = request_cache.get(vline)
            if cached is None:
                paddr, temperature = translate(vline)
                request = MemoryRequest(
                    address=paddr,
                    access_type=AccessType.INSTRUCTION_FETCH,
                    pc=vline,
                    temperature=temperature,
                    starvation_hint=vline in starved_lines,
                    core=core,
                )
                cached = (request, paddr >> line_shift)
                request_cache[vline] = cached
            request, line_no = cached
            latency, l2_miss = access_fast(request, line_no)
            stats.demand_fetches += 1

            stall = float(latency) - hidden_latency
            if l2_miss:
                remember(vline)
                stats.starvation_events += 1
            if stall > 0:
                stats.ifetch_stall_cycles += stall
                line_stall_cycles[vline] = line_stall_cycles.get(vline, 0.0) + stall
                line_miss_counts[vline] = line_miss_counts.get(vline, 0) + 1
                return stall
            return 0.0

        return fetch_line_fast

    # ------------------------------------------------------------- starvation
    def _remember_starvation(self, vline: int) -> None:
        if vline not in self._starved_lines:
            if len(self._starved_lines) >= self.config.starvation_table_entries:
                evicted = next(iter(self._starved_lines))
                self._starved_lines.pop(evicted)
                # The evicted line's hint flips back to False: rebuild its
                # cached request on next fetch.
                self._request_cache.pop(evicted, None)
            # This line's hint flips to True: invalidate its cached request.
            self._request_cache.pop(vline, None)
        self._starved_lines[vline] = True

    def starved_lines(self) -> frozenset[int]:
        """Virtual line addresses known to have caused decode starvation."""
        return frozenset(self._starved_lines)

    def reset(self) -> None:
        # In place: the fast-path closure captures the stats object and maps.
        stats = self.stats
        stats.demand_fetches = 0
        stats.starvation_events = 0
        stats.ifetch_stall_cycles = 0.0
        self._starved_lines.clear()
        self._request_cache.clear()
        self.line_stall_cycles.clear()
        self.line_miss_counts.clear()
