"""Trace-driven CPU core model with Top-Down cycle accounting.

The core consumes a stream of :class:`repro.common.trace.TraceRecord` objects
and produces total cycles plus a Top-Down breakdown.  It is a mechanistic
model in the spirit of Sniper's interval simulation (the paper's simulator):

* useful work retires at ``dispatch_width`` instructions per cycle;
* every new instruction cache line touched by the PC stream is fetched through
  the MMU and cache hierarchy; exposed fetch latency becomes ``ifetch`` stall;
* branches run through the branch prediction unit; each misprediction charges
  the fixed penalty to ``mispred``;
* data accesses go through the backend model; exposed latency becomes ``mem``;
* the trace's synthetic ``depend``/``issue`` annotations are charged verbatim
  (they model the dependency and issue-queue stalls a detailed OoO core would
  exhibit, and only matter for the Figure 1/2 Top-Down shapes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.cache.hierarchy import CacheHierarchy
from repro.common.addressing import CACHE_LINE_SIZE, line_address
from repro.common.trace import (
    FLAG_BRANCH,
    FLAG_CALL,
    FLAG_DEPEND,
    FLAG_INDIRECT,
    FLAG_ISSUE,
    FLAG_MEM,
    FLAG_RETURN,
    FLAG_STORE,
    FLAG_TAKEN,
    PackedTrace,
    TraceRecord,
)
from repro.common.translation import AddressTranslator
from repro.cpu.backend import BackendConfig, BackendModel
from repro.cpu.branch import BranchPredictionUnit, BranchPredictorConfig
from repro.cpu.frontend import FetchEngine, FrontendConfig
from repro.cpu.topdown import TopDownBreakdown


#: Memoised results of ``n`` sequential additions of a retire increment.
#: The record loop accumulates ``1/width`` per instruction; the packed loop
#: must produce the bit-identical float total, which is a pure function of
#: ``(increment, n)`` — cached so repeated replays of equally long windows
#: (policy sweeps replay the same trace many times) skip the O(n) accumulation.
_RETIRE_SUMS: dict[tuple[float, int], float] = {}


def _retire_total(increment: float, count: int) -> float:
    """The float reached by adding ``increment`` to 0.0 ``count`` times."""
    key = (increment, count)
    total = _RETIRE_SUMS.get(key)
    if total is None:
        total = 0.0
        for _ in range(count):
            total += increment
        _RETIRE_SUMS[key] = total
    return total


@dataclass
class CoreConfig:
    """Core-level parameters (Table 1: 6-wide dispatch, 128-entry ROB, 2 GHz)."""

    dispatch_width: int = 6
    frequency_ghz: float = 2.0
    frontend: FrontendConfig = field(default_factory=FrontendConfig)
    backend: BackendConfig = field(default_factory=BackendConfig)
    branch: BranchPredictorConfig = field(default_factory=BranchPredictorConfig)

    def validate(self) -> None:
        if self.dispatch_width <= 0:
            raise ValueError("dispatch_width must be positive")
        if self.frequency_ghz <= 0:
            raise ValueError("frequency_ghz must be positive")
        self.frontend.validate()
        self.backend.validate()
        self.branch.validate()


@dataclass
class CoreResult:
    """Aggregate outcome of running a trace through the core model."""

    instructions: int
    cycles: float
    topdown: TopDownBreakdown
    branches: int
    branch_mispredictions: int
    #: Demand instruction-fetch stall cycles accumulated per virtual line.
    line_stall_cycles: dict[int, float] = field(default_factory=dict)
    #: Demand instruction-fetch L2-miss counts per virtual line.
    line_miss_counts: dict[int, int] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        if self.cycles <= 0:
            return 0.0
        return self.instructions / self.cycles

    @property
    def cpi(self) -> float:
        if self.instructions <= 0:
            return 0.0
        return self.cycles / self.instructions

    @property
    def branch_mpki(self) -> float:
        if self.instructions <= 0:
            return 0.0
        return 1000.0 * self.branch_mispredictions / self.instructions


class CoreModel:
    """Trace-driven timing model of one energy-efficient mobile core."""

    def __init__(
        self,
        hierarchy: CacheHierarchy,
        translator: Optional[AddressTranslator] = None,
        config: Optional[CoreConfig] = None,
        line_size: int = CACHE_LINE_SIZE,
        core: int = 0,
    ) -> None:
        self.config = config or CoreConfig()
        self.config.validate()
        self.hierarchy = hierarchy
        self.line_size = line_size
        #: Core index in a multi-core system (0 for single-core runs).
        self.core = core
        self.frontend = FetchEngine(
            hierarchy, translator, self.config.frontend, line_size, core=core
        )
        self.backend = BackendModel(
            hierarchy, translator, self.config.backend, line_size, core=core
        )
        self.branch_unit = BranchPredictionUnit(self.config.branch)

    # ------------------------------------------------------------------- run
    def run(self, trace: Iterable[TraceRecord] | PackedTrace) -> CoreResult:
        """Execute a trace and return cycles plus the Top-Down breakdown.

        Each call accounts only its own instructions (per-line stall maps are
        cleared and branch statistics are reported as deltas), while predictor
        state, starvation history and cache contents persist across calls —
        so a warm-up window can be run first and discarded.

        A :class:`~repro.common.trace.PackedTrace` is replayed through the
        column-oriented fast loop (:meth:`run_packed`), which produces
        bit-identical results to replaying the equivalent record stream.
        """
        if isinstance(trace, PackedTrace):
            return self.run_packed(trace)
        topdown = TopDownBreakdown()
        instructions = 0
        current_line = -1
        width = self.config.dispatch_width
        penalty = self.config.branch.mispredict_penalty
        self.frontend.line_stall_cycles.clear()
        self.frontend.line_miss_counts.clear()
        branches_before = self.branch_unit.stats.branches
        mispredictions_before = self.branch_unit.stats.mispredictions

        for record in trace:
            instructions += 1
            topdown.add("retire", 1.0 / width)

            fetch_line = line_address(record.pc, self.line_size)
            if fetch_line != current_line:
                current_line = fetch_line
                outcome = self.frontend.fetch_line(record.pc)
                if outcome.stall_cycles > 0:
                    topdown.add("ifetch", outcome.stall_cycles)

            if record.is_branch:
                prediction = self.branch_unit.predict_and_update(record)
                if prediction.mispredicted:
                    topdown.add("mispred", float(penalty))
                if record.branch_taken:
                    # Fetch redirects to the branch target.
                    current_line = -1

            if record.is_memory:
                data = self.backend.access_data(
                    record.mem_address, record.pc, record.is_store
                )
                if data.stall_cycles > 0:
                    topdown.add("mem", data.stall_cycles)

            if record.depend_stall:
                topdown.add("depend", self.backend.charge_depend_stall(record.depend_stall))
            if record.issue_stall:
                topdown.add("issue", self.backend.charge_issue_stall(record.issue_stall))

        return CoreResult(
            instructions=instructions,
            cycles=topdown.total_cycles,
            topdown=topdown,
            branches=self.branch_unit.stats.branches - branches_before,
            branch_mispredictions=(
                self.branch_unit.stats.mispredictions - mispredictions_before
            ),
            line_stall_cycles=dict(self.frontend.line_stall_cycles),
            line_miss_counts=dict(self.frontend.line_miss_counts),
        )

    def run_packed(self, trace: PackedTrace) -> CoreResult:
        """Replay a packed trace through the column-oriented hot loop.

        Semantically identical to :meth:`run` over the same instructions, but
        the loop reads machine integers out of the packed columns, keeps the
        Top-Down accumulators in hoisted local floats (folded into the
        :class:`TopDownBreakdown` once at the end, with the same per-category
        accumulation order so the totals are bit-identical), and enters the
        memory system through the resident-line fast paths of
        :class:`~repro.cpu.frontend.FetchEngine` and
        :class:`~repro.cpu.backend.BackendModel`.
        """
        frontend = self.frontend
        backend = self.backend
        branch_unit = self.branch_unit
        frontend.line_stall_cycles.clear()
        frontend.line_miss_counts.clear()
        branches_before = branch_unit.stats.branches
        mispredictions_before = branch_unit.stats.mispredictions

        width = self.config.dispatch_width
        retire_inc = 1.0 / width
        penalty = float(self.config.branch.mispredict_penalty)
        line_size = self.line_size

        fetch_fast = frontend.fetch_line_fast
        data_fast = backend.access_data_fast
        predict_raw = branch_unit.predict_and_update_raw
        backend_stats = backend.stats

        sizes = trace.size
        targets = trace.branch_target
        mems = trace.mem_address
        depends = trace.depend_stall
        issues = trace.issue_stall

        instructions = len(trace.pc)
        # Only instructions that carry flags or cross a fetch boundary can
        # change simulator state; everything else just retires.  Iterate the
        # precomputed event indices and account retire bandwidth separately
        # (with the same one-add-per-instruction accumulation as the record
        # loop, so the total stays bit-identical).
        ifetch = 0.0
        mispred = 0.0
        depend = 0.0
        issue = 0.0
        mem = 0.0
        current_line = -1
        event_indices, event_pcs, event_flags, event_lines = trace.fetch_events(
            line_size
        )
        mem_lines = trace.mem_lines(line_size)
        for index, pc, flags, fetch_line in zip(
            event_indices, event_pcs, event_flags, event_lines
        ):
            if fetch_line != current_line:
                current_line = fetch_line
                stall = fetch_fast(fetch_line)
                if stall > 0.0:
                    ifetch += stall

            if flags:
                if flags & FLAG_BRANCH:
                    outcome = predict_raw(
                        pc,
                        sizes[index],
                        flags & FLAG_TAKEN != 0,
                        targets[index],
                        flags & FLAG_INDIRECT != 0,
                        flags & FLAG_CALL != 0,
                        flags & FLAG_RETURN != 0,
                    )
                    if outcome[2]:
                        mispred += penalty
                    if flags & FLAG_TAKEN:
                        # Fetch redirects to the branch target.
                        current_line = -1
                if flags & FLAG_MEM:
                    stall = data_fast(
                        mems[index],
                        pc,
                        flags & FLAG_STORE != 0,
                        mem_lines[index],
                    )
                    if stall > 0.0:
                        mem += stall
                if flags & FLAG_DEPEND:
                    cycles = depends[index]
                    backend_stats.depend_stall_cycles += cycles
                    depend += cycles
                if flags & FLAG_ISSUE:
                    cycles = issues[index]
                    backend_stats.issue_stall_cycles += cycles
                    issue += cycles

        retire = _retire_total(retire_inc, instructions)

        topdown = TopDownBreakdown(
            retire=retire,
            ifetch=ifetch,
            mispred=mispred,
            depend=depend,
            issue=issue,
            mem=mem,
        )
        return CoreResult(
            instructions=instructions,
            cycles=topdown.total_cycles,
            topdown=topdown,
            branches=branch_unit.stats.branches - branches_before,
            branch_mispredictions=(
                branch_unit.stats.mispredictions - mispredictions_before
            ),
            line_stall_cycles=dict(frontend.line_stall_cycles),
            line_miss_counts=dict(frontend.line_miss_counts),
        )

    def reset(self) -> None:
        self.frontend.reset()
        self.backend.reset()
        self.branch_unit.reset()


def run_packed_lockstep(
    cores: Sequence["CoreModel"], trace: PackedTrace
) -> list[CoreResult]:
    """Replay one packed trace through several cores in lockstep.

    All cores must share the same core/branch configuration and line size;
    they are expected to differ only in their memory systems (the
    multi-policy sweep case: one hierarchy per L2 replacement policy).  The
    trace is decoded once, the fetch-boundary decisions are made once (the
    current-fetch-line automaton depends only on the trace), and the branch
    outcomes are computed once on the *first* core's branch unit — branch
    predictor state evolves identically on every core because it never
    observes the memory system, so the shared unit produces exactly the
    outcome sequence each solo run would.  Only the per-hierarchy work
    (instruction fetches, data accesses and their stall accumulation) runs
    per core, which is what makes an N-policy sweep cheaper than N
    independent replays.

    Returns one :class:`CoreResult` per core, bit-identical to what
    ``core.run_packed(trace)`` would produce in its own process (pinned by
    ``tests/test_lockstep.py``).  The other cores' own branch units are left
    untouched; their results report the shared unit's deltas.
    """
    if not cores:
        return []
    if len(cores) == 1:
        return [cores[0].run_packed(trace)]
    lead = cores[0]
    line_size = lead.line_size
    lead_core_cfg = lead.config
    for core in cores[1:]:
        # Full config equality (dataclass ==, covering frontend, backend and
        # every branch-predictor sizing field): the branch outcomes are
        # computed once on the lead core's unit, so any difference in
        # predictor geometry would silently change the other cores' results.
        if core.line_size != line_size or core.config != lead_core_cfg:
            raise ValueError(
                "lockstep replay requires cores with identical core/branch "
                "configuration and line size"
            )

    branch_unit = lead.branch_unit
    branches_before = branch_unit.stats.branches
    mispredictions_before = branch_unit.stats.mispredictions
    predict_raw = branch_unit.predict_and_update_raw

    width = lead_core_cfg.dispatch_width
    retire_inc = 1.0 / width
    penalty = float(lead_core_cfg.branch.mispredict_penalty)

    frontends = [core.frontend for core in cores]
    for frontend in frontends:
        frontend.line_stall_cycles.clear()
        frontend.line_miss_counts.clear()
    fetch_fns = [frontend.fetch_line_fast for frontend in frontends]
    data_fns = [core.backend.access_data_fast for core in cores]
    backend_stats = [core.backend.stats for core in cores]
    count = len(cores)
    ifetch_acc = [0.0] * count
    mem_acc = [0.0] * count
    mispred = 0.0
    depend = 0.0
    issue = 0.0

    sizes = trace.size
    targets = trace.branch_target
    mems = trace.mem_address
    depends = trace.depend_stall
    issues = trace.issue_stall
    instructions = len(trace.pc)
    current_line = -1
    event_indices, event_pcs, event_flags, event_lines = trace.fetch_events(
        line_size
    )
    mem_lines = trace.mem_lines(line_size)
    for index, pc, flags, fetch_line in zip(
        event_indices, event_pcs, event_flags, event_lines
    ):
        if fetch_line != current_line:
            current_line = fetch_line
            for i, fetch_fast in enumerate(fetch_fns):
                stall = fetch_fast(fetch_line)
                if stall > 0.0:
                    ifetch_acc[i] += stall

        if flags:
            if flags & FLAG_BRANCH:
                outcome = predict_raw(
                    pc,
                    sizes[index],
                    flags & FLAG_TAKEN != 0,
                    targets[index],
                    flags & FLAG_INDIRECT != 0,
                    flags & FLAG_CALL != 0,
                    flags & FLAG_RETURN != 0,
                )
                if outcome[2]:
                    mispred += penalty
                if flags & FLAG_TAKEN:
                    # Fetch redirects to the branch target.
                    current_line = -1
            if flags & FLAG_MEM:
                address = mems[index]
                mem_line = mem_lines[index]
                is_store = flags & FLAG_STORE != 0
                for i, data_fast in enumerate(data_fns):
                    stall = data_fast(address, pc, is_store, mem_line)
                    if stall > 0.0:
                        mem_acc[i] += stall
            if flags & FLAG_DEPEND:
                cycles = depends[index]
                for stats in backend_stats:
                    stats.depend_stall_cycles += cycles
                depend += cycles
            if flags & FLAG_ISSUE:
                cycles = issues[index]
                for stats in backend_stats:
                    stats.issue_stall_cycles += cycles
                issue += cycles

    retire = _retire_total(retire_inc, instructions)
    branches = branch_unit.stats.branches - branches_before
    mispredictions = branch_unit.stats.mispredictions - mispredictions_before
    results = []
    for i, core in enumerate(cores):
        topdown = TopDownBreakdown(
            retire=retire,
            ifetch=ifetch_acc[i],
            mispred=mispred,
            depend=depend,
            issue=issue,
            mem=mem_acc[i],
        )
        results.append(
            CoreResult(
                instructions=instructions,
                cycles=topdown.total_cycles,
                topdown=topdown,
                branches=branches,
                branch_mispredictions=mispredictions,
                line_stall_cycles=dict(core.frontend.line_stall_cycles),
                line_miss_counts=dict(core.frontend.line_miss_counts),
            )
        )
    return results


class _CoreCursor:
    """Resumable replay position of one core in an interleaved run.

    Holds everything :meth:`CoreModel.run_packed` keeps in loop locals —
    the decoded event columns, the fetch-line automaton, and the per-category
    float accumulators — so the round-robin scheduler can advance a core a
    quantum at a time and the accumulation order within each core stays
    exactly the solo loop's.
    """

    __slots__ = (
        "core",
        "fetch_fast",
        "data_fast",
        "predict_raw",
        "backend_stats",
        "penalty",
        "retire_inc",
        "sizes",
        "targets",
        "mems",
        "depends",
        "issues",
        "event_indices",
        "event_pcs",
        "event_flags",
        "event_lines",
        "mem_lines",
        "instructions",
        "events",
        "pos",
        "bound",
        "current_line",
        "ifetch",
        "mispred",
        "depend",
        "issue",
        "mem",
        "branches_before",
        "mispredictions_before",
    )


def _advance_cursor(state: _CoreCursor, bound: int) -> None:
    """Process one core's events with instruction index below ``bound``.

    The body is a verbatim copy of :meth:`CoreModel.run_packed`'s event loop
    over a slice of the event stream; locals are reloaded from / stored back
    to the cursor so repeated calls chain into the identical computation.
    """
    pos = state.pos
    events = state.events
    if pos >= events:
        return
    event_indices = state.event_indices
    event_pcs = state.event_pcs
    event_flags = state.event_flags
    event_lines = state.event_lines
    sizes = state.sizes
    targets = state.targets
    mems = state.mems
    depends = state.depends
    issues = state.issues
    mem_lines = state.mem_lines
    fetch_fast = state.fetch_fast
    data_fast = state.data_fast
    predict_raw = state.predict_raw
    backend_stats = state.backend_stats
    penalty = state.penalty
    current_line = state.current_line
    ifetch = state.ifetch
    mispred = state.mispred
    depend = state.depend
    issue = state.issue
    mem = state.mem

    while pos < events:
        index = event_indices[pos]
        if index >= bound:
            break
        pc = event_pcs[pos]
        flags = event_flags[pos]
        fetch_line = event_lines[pos]
        if fetch_line != current_line:
            current_line = fetch_line
            stall = fetch_fast(fetch_line)
            if stall > 0.0:
                ifetch += stall

        if flags:
            if flags & FLAG_BRANCH:
                outcome = predict_raw(
                    pc,
                    sizes[index],
                    flags & FLAG_TAKEN != 0,
                    targets[index],
                    flags & FLAG_INDIRECT != 0,
                    flags & FLAG_CALL != 0,
                    flags & FLAG_RETURN != 0,
                )
                if outcome[2]:
                    mispred += penalty
                if flags & FLAG_TAKEN:
                    # Fetch redirects to the branch target.
                    current_line = -1
            if flags & FLAG_MEM:
                stall = data_fast(
                    mems[index],
                    pc,
                    flags & FLAG_STORE != 0,
                    mem_lines[index],
                )
                if stall > 0.0:
                    mem += stall
            if flags & FLAG_DEPEND:
                cycles = depends[index]
                backend_stats.depend_stall_cycles += cycles
                depend += cycles
            if flags & FLAG_ISSUE:
                cycles = issues[index]
                backend_stats.issue_stall_cycles += cycles
                issue += cycles
        pos += 1

    state.pos = pos
    state.current_line = current_line
    state.ifetch = ifetch
    state.mispred = mispred
    state.depend = depend
    state.issue = issue
    state.mem = mem


def run_packed_interleaved(
    cores: Sequence["CoreModel"],
    traces: Sequence[PackedTrace],
    quanta: Optional[Sequence[int]] = None,
) -> list[CoreResult]:
    """Replay N packed traces through N cores in a deterministic interleave.

    The inversion of :func:`run_packed_lockstep`: instead of one trace
    advancing N memory systems, N independent trace streams advance their own
    cores — each with its private branch unit, frontend and L1s — typically
    against hierarchies built over one
    :class:`~repro.cache.hierarchy.SharedCacheSystem`, so the streams contend
    for the shared L2/SLC.  Cores take turns in strict round-robin order;
    core ``i`` advances ``quanta[i]`` instructions per turn (default 1:1),
    and a core whose trace is exhausted drops out while the rest continue.
    The interleave — and therefore every shared-cache state transition — is a
    pure function of the traces and ratios, independent of host scheduling.

    Per-core accounting is exactly :meth:`CoreModel.run_packed`'s: the same
    event iteration, the same accumulation order of every float, the same
    retire-bandwidth fold.  With a single core the loop degenerates to the
    solo replay and produces bit-identical results
    (``tests/test_multicore.py``).
    """
    count = len(cores)
    if len(traces) != count:
        raise ValueError("run_packed_interleaved needs one trace per core")
    if quanta is None:
        quanta = (1,) * count
    quanta = tuple(int(q) for q in quanta)
    if len(quanta) != count:
        raise ValueError("run_packed_interleaved needs one quantum per core")
    if any(q <= 0 for q in quanta):
        raise ValueError("interleave quanta must be positive")
    if not cores:
        return []

    states: list[_CoreCursor] = []
    for core, trace in zip(cores, traces):
        frontend = core.frontend
        frontend.line_stall_cycles.clear()
        frontend.line_miss_counts.clear()
        branch_unit = core.branch_unit
        event_indices, event_pcs, event_flags, event_lines = trace.fetch_events(
            core.line_size
        )
        state = _CoreCursor()
        state.core = core
        state.fetch_fast = frontend.fetch_line_fast
        state.data_fast = core.backend.access_data_fast
        state.predict_raw = branch_unit.predict_and_update_raw
        state.backend_stats = core.backend.stats
        state.penalty = float(core.config.branch.mispredict_penalty)
        state.retire_inc = 1.0 / core.config.dispatch_width
        state.sizes = trace.size
        state.targets = trace.branch_target
        state.mems = trace.mem_address
        state.depends = trace.depend_stall
        state.issues = trace.issue_stall
        state.event_indices = event_indices
        state.event_pcs = event_pcs
        state.event_flags = event_flags
        state.event_lines = event_lines
        state.mem_lines = trace.mem_lines(core.line_size)
        state.instructions = len(trace.pc)
        state.events = len(event_indices)
        state.pos = 0
        state.bound = 0
        state.current_line = -1
        state.ifetch = 0.0
        state.mispred = 0.0
        state.depend = 0.0
        state.issue = 0.0
        state.mem = 0.0
        state.branches_before = branch_unit.stats.branches
        state.mispredictions_before = branch_unit.stats.mispredictions
        states.append(state)

    active = True
    while active:
        active = False
        for state, quantum in zip(states, quanta):
            if state.bound >= state.instructions and state.pos >= state.events:
                continue
            bound = state.bound + quantum
            if bound > state.instructions:
                bound = state.instructions
            state.bound = bound
            _advance_cursor(state, bound)
            if state.bound < state.instructions or state.pos < state.events:
                active = True

    results = []
    for state in states:
        core = state.core
        topdown = TopDownBreakdown(
            retire=_retire_total(state.retire_inc, state.instructions),
            ifetch=state.ifetch,
            mispred=state.mispred,
            depend=state.depend,
            issue=state.issue,
            mem=state.mem,
        )
        branch_stats = core.branch_unit.stats
        results.append(
            CoreResult(
                instructions=state.instructions,
                cycles=topdown.total_cycles,
                topdown=topdown,
                branches=branch_stats.branches - state.branches_before,
                branch_mispredictions=(
                    branch_stats.mispredictions - state.mispredictions_before
                ),
                line_stall_cycles=dict(core.frontend.line_stall_cycles),
                line_miss_counts=dict(core.frontend.line_miss_counts),
            )
        )
    return results
