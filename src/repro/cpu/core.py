"""Trace-driven CPU core model with Top-Down cycle accounting.

The core consumes a stream of :class:`repro.common.trace.TraceRecord` objects
and produces total cycles plus a Top-Down breakdown.  It is a mechanistic
model in the spirit of Sniper's interval simulation (the paper's simulator):

* useful work retires at ``dispatch_width`` instructions per cycle;
* every new instruction cache line touched by the PC stream is fetched through
  the MMU and cache hierarchy; exposed fetch latency becomes ``ifetch`` stall;
* branches run through the branch prediction unit; each misprediction charges
  the fixed penalty to ``mispred``;
* data accesses go through the backend model; exposed latency becomes ``mem``;
* the trace's synthetic ``depend``/``issue`` annotations are charged verbatim
  (they model the dependency and issue-queue stalls a detailed OoO core would
  exhibit, and only matter for the Figure 1/2 Top-Down shapes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.cache.hierarchy import CacheHierarchy
from repro.common.addressing import CACHE_LINE_SIZE, line_address
from repro.common.trace import TraceRecord
from repro.common.translation import AddressTranslator
from repro.cpu.backend import BackendConfig, BackendModel
from repro.cpu.branch import BranchPredictionUnit, BranchPredictorConfig
from repro.cpu.frontend import FetchEngine, FrontendConfig
from repro.cpu.topdown import TopDownBreakdown


@dataclass
class CoreConfig:
    """Core-level parameters (Table 1: 6-wide dispatch, 128-entry ROB, 2 GHz)."""

    dispatch_width: int = 6
    frequency_ghz: float = 2.0
    frontend: FrontendConfig = field(default_factory=FrontendConfig)
    backend: BackendConfig = field(default_factory=BackendConfig)
    branch: BranchPredictorConfig = field(default_factory=BranchPredictorConfig)

    def validate(self) -> None:
        if self.dispatch_width <= 0:
            raise ValueError("dispatch_width must be positive")
        if self.frequency_ghz <= 0:
            raise ValueError("frequency_ghz must be positive")
        self.frontend.validate()
        self.backend.validate()
        self.branch.validate()


@dataclass
class CoreResult:
    """Aggregate outcome of running a trace through the core model."""

    instructions: int
    cycles: float
    topdown: TopDownBreakdown
    branches: int
    branch_mispredictions: int
    #: Demand instruction-fetch stall cycles accumulated per virtual line.
    line_stall_cycles: dict[int, float] = field(default_factory=dict)
    #: Demand instruction-fetch L2-miss counts per virtual line.
    line_miss_counts: dict[int, int] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        if self.cycles <= 0:
            return 0.0
        return self.instructions / self.cycles

    @property
    def cpi(self) -> float:
        if self.instructions <= 0:
            return 0.0
        return self.cycles / self.instructions

    @property
    def branch_mpki(self) -> float:
        if self.instructions <= 0:
            return 0.0
        return 1000.0 * self.branch_mispredictions / self.instructions


class CoreModel:
    """Trace-driven timing model of one energy-efficient mobile core."""

    def __init__(
        self,
        hierarchy: CacheHierarchy,
        translator: Optional[AddressTranslator] = None,
        config: Optional[CoreConfig] = None,
        line_size: int = CACHE_LINE_SIZE,
    ) -> None:
        self.config = config or CoreConfig()
        self.config.validate()
        self.hierarchy = hierarchy
        self.line_size = line_size
        self.frontend = FetchEngine(
            hierarchy, translator, self.config.frontend, line_size
        )
        self.backend = BackendModel(
            hierarchy, translator, self.config.backend, line_size
        )
        self.branch_unit = BranchPredictionUnit(self.config.branch)

    # ------------------------------------------------------------------- run
    def run(self, trace: Iterable[TraceRecord]) -> CoreResult:
        """Execute a trace and return cycles plus the Top-Down breakdown.

        Each call accounts only its own instructions (per-line stall maps are
        cleared and branch statistics are reported as deltas), while predictor
        state, starvation history and cache contents persist across calls —
        so a warm-up window can be run first and discarded.
        """
        topdown = TopDownBreakdown()
        instructions = 0
        current_line = -1
        width = self.config.dispatch_width
        penalty = self.config.branch.mispredict_penalty
        self.frontend.line_stall_cycles.clear()
        self.frontend.line_miss_counts.clear()
        branches_before = self.branch_unit.stats.branches
        mispredictions_before = self.branch_unit.stats.mispredictions

        for record in trace:
            instructions += 1
            topdown.add("retire", 1.0 / width)

            fetch_line = line_address(record.pc, self.line_size)
            if fetch_line != current_line:
                current_line = fetch_line
                outcome = self.frontend.fetch_line(record.pc)
                if outcome.stall_cycles > 0:
                    topdown.add("ifetch", outcome.stall_cycles)

            if record.is_branch:
                prediction = self.branch_unit.predict_and_update(record)
                if prediction.mispredicted:
                    topdown.add("mispred", float(penalty))
                if record.branch_taken:
                    # Fetch redirects to the branch target.
                    current_line = -1

            if record.is_memory:
                data = self.backend.access_data(
                    record.mem_address, record.pc, record.is_store
                )
                if data.stall_cycles > 0:
                    topdown.add("mem", data.stall_cycles)

            if record.depend_stall:
                topdown.add("depend", self.backend.charge_depend_stall(record.depend_stall))
            if record.issue_stall:
                topdown.add("issue", self.backend.charge_issue_stall(record.issue_stall))

        return CoreResult(
            instructions=instructions,
            cycles=topdown.total_cycles,
            topdown=topdown,
            branches=self.branch_unit.stats.branches - branches_before,
            branch_mispredictions=(
                self.branch_unit.stats.mispredictions - mispredictions_before
            ),
            line_stall_cycles=dict(self.frontend.line_stall_cycles),
            line_miss_counts=dict(self.frontend.line_miss_counts),
        )

    def reset(self) -> None:
        self.frontend.reset()
        self.backend.reset()
        self.branch_unit.reset()
