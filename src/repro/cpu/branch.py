"""Branch prediction unit.

Table 1 of the paper configures a 1 K-entry BTB, a 512-entry indirect BTB, a
256-entry loop predictor and a 1 K-entry global (history-based) direction
predictor with an 8-cycle misprediction penalty.  The model here predicts both
the direction (gshare) and the target (BTB / indirect BTB / return stack) of
each branch in the trace and reports whether the prediction was correct; the
core charges the penalty and the pseudo-FDIP prefetcher follows the predicted
path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.trace import TraceRecord


@dataclass
class BranchPredictorConfig:
    """Sizing of the branch prediction structures (Table 1 defaults)."""

    btb_entries: int = 1024
    indirect_btb_entries: int = 512
    loop_predictor_entries: int = 256
    global_predictor_entries: int = 1024
    history_bits: int = 10
    return_stack_entries: int = 16
    mispredict_penalty: int = 8

    def validate(self) -> None:
        for name in (
            "btb_entries",
            "indirect_btb_entries",
            "loop_predictor_entries",
            "global_predictor_entries",
            "return_stack_entries",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.history_bits <= 0 or self.history_bits > 24:
            raise ValueError("history_bits must be in (0, 24]")
        if self.mispredict_penalty < 0:
            raise ValueError("mispredict_penalty must be non-negative")


@dataclass
class BranchStats:
    """Counters for branch prediction behaviour."""

    branches: int = 0
    mispredictions: int = 0
    direction_mispredictions: int = 0
    target_mispredictions: int = 0
    btb_misses: int = 0

    @property
    def mpki_numerator(self) -> int:
        return self.mispredictions

    @property
    def accuracy(self) -> float:
        if self.branches == 0:
            return 1.0
        return 1.0 - self.mispredictions / self.branches


@dataclass
class PredictionOutcome:
    """Result of predicting one branch."""

    predicted_taken: bool
    predicted_target: int
    mispredicted: bool
    direction_wrong: bool = False
    target_wrong: bool = False


@dataclass
class _LoopEntry:
    trip_count: int = 0
    current: int = 0
    confident: bool = False


class BranchPredictionUnit:
    """gshare direction predictor + BTB/indirect-BTB/loop/return-stack targets."""

    def __init__(self, config: BranchPredictorConfig | None = None) -> None:
        self.config = config or BranchPredictorConfig()
        self.config.validate()
        cfg = self.config
        #: Global history register, in a one-element list so the fast-path
        #: closure can update it in place (``_history`` is a property view).
        self._history_cell = [0]
        self._history_mask = (1 << cfg.history_bits) - 1
        # 2-bit saturating counters, initialised weakly taken.
        self._counters = [2] * cfg.global_predictor_entries
        self._btb: dict[int, int] = {}
        self._indirect_btb: dict[int, int] = {}
        self._loop: dict[int, _LoopEntry] = {}
        self._return_stack: list[int] = []
        self.stats = BranchStats()
        #: The per-branch predict+update step as a closure over the (stable,
        #: reset-in-place) prediction structures.
        self.predict_and_update_raw = self._make_predict_raw()

    @property
    def _history(self) -> int:
        """Object view of the history register (cold paths and tests)."""
        return self._history_cell[0]

    @_history.setter
    def _history(self, value: int) -> None:
        self._history_cell[0] = value

    # ------------------------------------------------------------------ steps
    def predict_and_update(self, record: TraceRecord) -> PredictionOutcome:
        """Predict a branch, update all structures with the actual outcome."""
        if not record.is_branch:
            raise ValueError("predict_and_update requires a branch record")
        outcome = self.predict_and_update_raw(
            record.pc,
            record.size,
            record.branch_taken,
            record.branch_target,
            record.is_indirect,
            record.is_call,
            record.is_return,
        )
        predicted_taken, predicted_target, mispredicted, direction_wrong, target_wrong = outcome
        return PredictionOutcome(
            predicted_taken=predicted_taken,
            predicted_target=predicted_target,
            mispredicted=mispredicted,
            direction_wrong=direction_wrong,
            target_wrong=target_wrong,
        )

    def _make_predict_raw(self):
        """Build the scalar predict+update step as a closure.

        The returned callable is the twin of :meth:`predict_and_update` used
        by the packed-trace replay loop, which has no record object to hand
        over; it inlines the direction (gshare + loop), target
        (BTB/indirect/return-stack) and update steps of the method-based
        helpers below with identical state transitions.  Returns
        ``(predicted_taken, predicted_target, mispredicted, direction_wrong,
        target_wrong)``.
        """
        cfg = self.config
        stats = self.stats
        counters = self._counters
        btb = self._btb
        indirect_btb = self._indirect_btb
        loop = self._loop
        return_stack = self._return_stack
        history_cell = self._history_cell
        history_mask = self._history_mask
        gshare_entries = cfg.global_predictor_entries
        loop_entries = cfg.loop_predictor_entries
        indirect_entries = cfg.indirect_btb_entries
        btb_entries = cfg.btb_entries
        ras_entries = cfg.return_stack_entries

        def predict_and_update_raw(
            pc: int,
            size: int,
            taken: bool,
            target: int,
            is_indirect: bool,
            is_call: bool,
            is_return: bool,
        ) -> tuple[bool, int, bool, bool, bool]:
            stats.branches += 1
            history = history_cell[0]

            # Direction prediction (loop predictor, else gshare).
            loop_entry = loop.get(pc)
            if loop_entry is not None and loop_entry.confident:
                predicted_taken = loop_entry.current < loop_entry.trip_count
            else:
                predicted_taken = (
                    counters[((pc >> 2) ^ history) % gshare_entries] >= 2
                )

            # Target prediction (return stack, indirect BTB, BTB).
            if is_return and return_stack:
                predicted_target = return_stack[-1]
            elif is_indirect:
                predicted_target = indirect_btb.get(pc, 0)
            else:
                predicted_target = btb.get(pc)
                if predicted_target is None:
                    stats.btb_misses += 1
                    predicted_target = 0

            direction_wrong = predicted_taken != taken
            target_wrong = (
                taken and not direction_wrong and predicted_target != target
            )
            mispredicted = direction_wrong or target_wrong

            if mispredicted:
                stats.mispredictions += 1
            if direction_wrong:
                stats.direction_mispredictions += 1
            if target_wrong:
                stats.target_mispredictions += 1

            # Direction update (gshare counter + loop predictor).
            index = ((pc >> 2) ^ history) % gshare_entries
            value = counters[index]
            if taken:
                if value < 3:
                    counters[index] = value + 1
            elif value > 0:
                counters[index] = value - 1
            if loop_entry is None:
                if len(loop) >= loop_entries:
                    loop.pop(next(iter(loop)))
                loop_entry = _LoopEntry()
                loop[pc] = loop_entry
            if taken:
                loop_entry.current += 1
            else:
                current = loop_entry.current
                if current > 0:
                    if loop_entry.trip_count == current:
                        loop_entry.confident = True
                    else:
                        loop_entry.trip_count = current
                        loop_entry.confident = False
                loop_entry.current = 0

            # Target update (return stack push/pop, BTB fills).
            if is_call:
                return_stack.append(pc + size)
                if len(return_stack) > ras_entries:
                    return_stack.pop(0)
            if is_return and return_stack:
                return_stack.pop()
            if taken:
                if is_indirect:
                    if (
                        pc not in indirect_btb
                        and len(indirect_btb) >= indirect_entries
                    ):
                        indirect_btb.pop(next(iter(indirect_btb)))
                    indirect_btb[pc] = target
                else:
                    if pc not in btb and len(btb) >= btb_entries:
                        btb.pop(next(iter(btb)))
                    btb[pc] = target

            history_cell[0] = ((history << 1) | (1 if taken else 0)) & history_mask
            return (
                predicted_taken,
                predicted_target,
                mispredicted,
                direction_wrong,
                target_wrong,
            )

        return predict_and_update_raw

    def reset(self) -> None:
        # In place: the fast-path closure captures every structure.
        cfg = self.config
        self._history_cell[0] = 0
        self._counters[:] = [2] * cfg.global_predictor_entries
        self._btb.clear()
        self._indirect_btb.clear()
        self._loop.clear()
        self._return_stack.clear()
        stats = self.stats
        stats.branches = 0
        stats.mispredictions = 0
        stats.direction_mispredictions = 0
        stats.target_mispredictions = 0
        stats.btb_misses = 0

    # ------------------------------------------------------------- direction
    def _direction_index(self, pc: int) -> int:
        return ((pc >> 2) ^ self._history) % self.config.global_predictor_entries

    def _predict_direction(self, pc: int) -> bool:
        loop_entry = self._loop.get(pc)
        if loop_entry is not None and loop_entry.confident:
            # Loop predictor: predict taken until the learned trip count.
            return loop_entry.current < loop_entry.trip_count
        return self._counters[self._direction_index(pc)] >= 2

    def _update_direction(self, pc: int, taken: bool) -> None:
        index = self._direction_index(pc)
        if taken:
            self._counters[index] = min(self._counters[index] + 1, 3)
        else:
            self._counters[index] = max(self._counters[index] - 1, 0)
        self._update_loop(pc, taken)

    def _update_loop(self, pc: int, taken: bool) -> None:
        entry = self._loop.get(pc)
        if entry is None:
            if len(self._loop) >= self.config.loop_predictor_entries:
                self._loop.pop(next(iter(self._loop)))
            entry = _LoopEntry()
            self._loop[pc] = entry
        if taken:
            entry.current += 1
        else:
            if entry.current > 0:
                if entry.trip_count == entry.current:
                    entry.confident = True
                else:
                    entry.trip_count = entry.current
                    entry.confident = False
            entry.current = 0

    # ---------------------------------------------------------------- targets
    def _predict_target_raw(self, pc: int, is_indirect: bool, is_return: bool) -> int:
        if is_return and self._return_stack:
            return self._return_stack[-1]
        if is_indirect:
            return self._indirect_btb.get(pc, 0)
        target = self._btb.get(pc)
        if target is None:
            self.stats.btb_misses += 1
            return 0
        return target

    def _predict_target(self, record: TraceRecord) -> int:
        return self._predict_target_raw(record.pc, record.is_indirect, record.is_return)

    def _update_target_raw(
        self,
        pc: int,
        size: int,
        taken: bool,
        target: int,
        is_indirect: bool,
        is_call: bool,
        is_return: bool,
    ) -> None:
        cfg = self.config
        if is_call:
            self._return_stack.append(pc + size)
            if len(self._return_stack) > cfg.return_stack_entries:
                self._return_stack.pop(0)
        if is_return and self._return_stack:
            self._return_stack.pop()
        if not taken:
            return
        if is_indirect:
            if (
                pc not in self._indirect_btb
                and len(self._indirect_btb) >= cfg.indirect_btb_entries
            ):
                self._indirect_btb.pop(next(iter(self._indirect_btb)))
            self._indirect_btb[pc] = target
        else:
            if pc not in self._btb and len(self._btb) >= cfg.btb_entries:
                self._btb.pop(next(iter(self._btb)))
            self._btb[pc] = target
