"""CPU core substrate: branch prediction, frontend, backend, Top-Down."""

from repro.cpu.backend import BackendConfig, BackendModel, BackendStats
from repro.cpu.branch import (
    BranchPredictionUnit,
    BranchPredictorConfig,
    BranchStats,
    PredictionOutcome,
)
from repro.cpu.core import CoreConfig, CoreModel, CoreResult
from repro.cpu.frontend import FetchEngine, FrontendConfig, FrontendStats
from repro.cpu.topdown import TopDownBreakdown

__all__ = [
    "BranchPredictionUnit",
    "BranchPredictorConfig",
    "BranchStats",
    "PredictionOutcome",
    "FetchEngine",
    "FrontendConfig",
    "FrontendStats",
    "BackendModel",
    "BackendConfig",
    "BackendStats",
    "CoreModel",
    "CoreConfig",
    "CoreResult",
    "TopDownBreakdown",
]
