"""NumPy-vectorized batch replay kernel for the memory system.

The scalar packed-trace loop (:meth:`repro.cpu.core.CoreModel.run_packed`)
walks the hierarchy one event at a time; on memory-bound shapes that is one
Python-level dict probe per access and one multi-level walk per miss.  This
kernel replays the same trace in consecutive *windows* of replay events:

1. **Decode** (sequential): the fetch-boundary automaton, branch prediction,
   stall annotations and prefetcher observations run in trace order — all of
   them are independent of cache contents — and emit an ordered stream of
   memory *ops* (demand fetches, demand data accesses, prefetch probes).
2. **Probe** (vectorized): every op's line is tag-matched against all ways of
   its addressed set in L1, L2 and SLC at once, over per-window ndarray
   snapshots of the flat cache columns (``SetAssociativeCache.tag_arrays``),
   yielding a servicing level and way per op.
3. **Apply** (sequential): the ops run in order against the live columns —
   hits touch replacement state inline, misses run an inlined copy of the
   hierarchy walk (fills, back-invalidations, exclusive-SLC victim fills).
   A ``touched`` set tracks every line whose residency changed inside the
   window; ops on touched lines re-probe the authoritative residency dicts,
   so intra-window aliasing (a fill or eviction invalidating an earlier
   batched probe) is corrected exactly.
4. **Fold**: order-independent integer counters (hit/miss statistics,
   latency sums) are accumulated per window from a bincount over the final
   ``(op kind, level)`` codes; order-dependent float accumulation (stall
   cycles) happened per op in step 3, in scalar order.

The result is **bit-identical** to ``run_packed`` — same counters, same float
stall totals, same dict insertion order — which the differential harness in
``tests/test_vector_equivalence.py`` pins for every batchable configuration.

Batchability
------------

The kernel only replays configurations whose per-access behaviour is a pure
function of addresses and policy state:

* identity address translation, or the OS model's :class:`MMU`: its page
  mappings are established on first touch and never revoked, so translating
  at decode time (stage 1, in trace order — the same order the scalar loop
  would translate in) yields the same physical addresses and the same
  demand-mapping sequence as translating at access time.  The per-page
  temperature tags travel with each decoded op into the fills.  The one
  tolerated divergence is the MMU's *translation counters* on starvation
  flips inside a window (re-translation happens one window later) — the
  same class of counter drift the scalar fast path already documents
  against the record path; translation counters never enter simulation
  results;
* request-free replacement policies on every level — LRU, FIFO, Random,
  SRRIP, BRRIP (structural checks from :mod:`repro.cache.replacement.base`);
  request-aware policies (SHiP, TRRIP, Emissary, DRRIP, CLIP) fall back to
  the scalar loop;
* prefetchers whose ``observe`` provably ignores the hit flag (the stock
  stride and next-line engines, or none);
* no ``l2_access_observer`` attached (checked per call by the simulator —
  the reuse-distance analysis needs the scalar loop's per-access callbacks).

:func:`unbatchable_reason` reports the first failing condition;
``engine="auto"`` uses it to pick the kernel per configuration, while
``engine="vector"`` raises on it (see
:class:`repro.sim.simulator.SystemSimulator`).
"""

from __future__ import annotations

from typing import Optional

try:  # NumPy is optional: the scalar engine never needs it.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on minimal installs
    _np = None

from repro.cache.prefetch import (
    NextLinePrefetcher,
    NullPrefetcher,
    StridePrefetcher,
)
from repro.cache.replacement.base import (
    ReplacementPolicy,
    is_request_free_evict,
    is_request_free_hit,
    is_request_free_insert,
    is_request_free_victim,
)
from repro.cache.replacement.basic import FIFOPolicy
from repro.cache.replacement.rrip import BRRIPPolicy, RRIPBase
from repro.common.request import AccessType, MemoryRequest, ScratchRequest
from repro.common.temperature import Temperature
from repro.common.trace import (
    FLAG_BRANCH,
    FLAG_CALL,
    FLAG_DEPEND,
    FLAG_INDIRECT,
    FLAG_ISSUE,
    FLAG_MEM,
    FLAG_RETURN,
    FLAG_STORE,
    FLAG_TAKEN,
    PackedTrace,
)
from repro.common.translation import IdentityTranslator
from repro.cpu.core import CoreModel, CoreResult, _retire_total
from repro.osmodel.mmu import MMU
from repro.cpu.topdown import TopDownBreakdown

#: Replay events per batched window.  Large enough to amortize the ndarray
#: round trips, small enough that intra-window residency corrections (the
#: ``touched`` re-probes) stay rare on the paper's working sets.
DEFAULT_WINDOW = 4096

#: Op-kind codes of the decoded op stream.  Instruction-side kinds are even,
#: data-side odd; prefetch kinds are >= 2.
_K_IFETCH = 0
_K_DATA = 1
_K_PF_INST = 2
_K_PF_DATA = 3


def numpy_available() -> bool:
    """Whether the NumPy dependency of the kernel is importable."""
    return _np is not None


def _insert_ignores_request(policy: ReplacementPolicy) -> bool:
    """Whether ``on_insert`` provably never reads the request.

    Beyond the structural base-class check, two concrete hooks are known to
    be request-indifferent by inspection: FIFO's insertion stamp and the
    RRIP-base insert when it delegates to a request-indifferent
    ``insertion_rrpv`` (the static default or BRRIP's deterministic duty
    cycle).  The checks compare resolved function objects, so any subclass
    override disqualifies itself automatically.
    """
    cls = type(policy)
    if is_request_free_insert(policy):
        return True
    hook = cls.on_insert
    if hook is FIFOPolicy.on_insert:
        return True
    if hook is RRIPBase.on_insert:
        insertion = cls.insertion_rrpv
        return (
            insertion is RRIPBase.insertion_rrpv
            or insertion is BRRIPPolicy.insertion_rrpv
        )
    return False


def unbatchable_reason(core: CoreModel) -> Optional[str]:
    """Why ``core`` cannot be replayed by the vector kernel, or ``None``.

    Covers every *static* condition; the one dynamic condition — an
    ``l2_access_observer`` attached to the hierarchy — is checked per run by
    the caller, because observers come and go between runs.
    """
    if _np is None:
        return "NumPy is not installed"
    # Identity translation and the OS-model MMU are both decode-ahead safe:
    # the MMU's mappings are established on first touch and never revoked,
    # so stage-1 translation (in trace order) reproduces the access-time
    # physical addresses and demand-mapping sequence exactly.  Any other
    # translator could observe cache state or mutate mappings, so it forces
    # the scalar loop.
    for translator in (core.frontend.translator, core.backend.translator):
        if type(translator) not in (IdentityTranslator, MMU):
            return (
                f"unsupported address translator "
                f"{type(translator).__name__!r}"
            )
    hierarchy = core.hierarchy
    for cache in (hierarchy.l1i, hierarchy.l1d, hierarchy.l2, hierarchy.slc):
        policy = cache.policy
        if not is_request_free_hit(policy):
            return f"{cache.name} policy {policy.name!r} reads the request on hits"
        if not is_request_free_victim(policy):
            return (
                f"{cache.name} policy {policy.name!r} reads the request "
                "for victim selection"
            )
        if not _insert_ignores_request(policy):
            return (
                f"{cache.name} policy {policy.name!r} reads the request "
                "on insertion"
            )
        if cache._evict_rows is None and not is_request_free_evict(policy):
            return (
                f"{cache.name} policy {policy.name!r} reads the request "
                "on eviction"
            )
    for label, prefetcher in (
        ("l1i", hierarchy.l1i_prefetcher),
        ("l1d", hierarchy.l1d_prefetcher),
        ("l2", hierarchy.l2_prefetcher),
    ):
        if isinstance(prefetcher, NullPrefetcher):
            continue
        if type(prefetcher) in (StridePrefetcher, NextLinePrefetcher):
            continue
        return (
            f"{label} prefetcher {prefetcher.name!r} may depend on "
            "hit/miss outcomes"
        )
    return None


def batchable(core: CoreModel) -> bool:
    """Whether the vector kernel can replay ``core``'s configuration."""
    return unbatchable_reason(core) is None


def _make_filler(cache, triple_victim: bool):
    """Specialized fill closure for one cache, plus its counter drain.

    An inlined copy of :meth:`SetAssociativeCache._fill_scalars` for the
    walk's contract (``check_existing=False``, temperature ``NONE``) under
    the batchability gates (policy hooks never read the request).  The fill
    is the single hottest call on memory-bound replays, so the body is
    specialized at build time on the policy's fused-replace kind (and, for
    the ubiquitous 4-way LRU L1s, on the associativity, with the first-min
    scan unrolled to plain comparisons).

    The evicted line is *always* reported — the kernel needs every residency
    change for its ``touched`` set.  With ``triple_victim`` the victim is a
    ``(line, is_instruction, pc)`` tuple or ``None`` (the L2 shape: back-
    invalidation and victim fills need all three fields); without it the
    victim is just the line number, ``-1`` for none (the L1/SLC shape, which
    skips the tuple construction).

    ``fills``/``prefetch fills``/``evictions``/``writebacks`` are tallied in
    closure cells; ``drain()`` returns and zeroes them so the caller can fold
    them into ``cache.stats`` once per run (order-independent integers).
    """
    line_map = cache._line_map
    set_mask = cache._set_mask
    ways = cache.associativity
    lines, dirty, instr, temps, pcs = cache._columns
    valid = cache._valid
    valid_counts = cache._valid_counts
    policy_replace = cache._policy_replace
    policy_victim = cache._policy_victim
    policy_insert = cache._policy_insert
    policy_evict = cache.policy.on_evict
    policy_on_insert = cache.policy.on_insert
    replace_kind = cache._replace_kind
    replace_rows = cache._replace_rows
    replace_a = cache._replace_a
    replace_b = cache._replace_b
    evict_rows = cache._evict_rows
    evict_arg = cache._evict_arg
    way_range = range(ways)
    temp_none = Temperature.NONE
    fills = prefetch_fills = evictions = writebacks = 0

    def finish(slot, way, line_no, dirty_new, instr_new, temp, pc, is_prefetch):
        # Shared insert tail for the unspecialized variants (the hot
        # specialized variants inline it).
        nonlocal fills, prefetch_fills
        lines[slot] = line_no
        dirty[slot] = dirty_new
        instr[slot] = instr_new
        temps[slot] = temp
        pcs[slot] = pc
        line_map[line_no] = way
        fills += 1
        if is_prefetch:
            prefetch_fills += 1

    def fill_lru4(line_no, dirty_new, instr_new, temp, pc, is_prefetch):
        # replace_kind 1, 4 ways, line-number victim: the L1 fill. The
        # first-min scan is unrolled (exactly list.index(min(list)) for
        # four stamps: ties resolve to the lowest way).
        nonlocal fills, prefetch_fills, evictions, writebacks
        set_index = line_no & set_mask
        base = set_index * 4
        if valid_counts[set_index] < 4:
            way = valid.find(0, base, base + 4) - base
            slot = base + way
            valid[slot] = 1
            valid_counts[set_index] += 1
            if policy_insert is not None:
                policy_insert(set_index, way)
            else:
                policy_on_insert(set_index, way, None)
            victim = -1
        else:
            stamps = replace_rows[set_index]
            a = stamps[0]
            b = stamps[1]
            c = stamps[2]
            d = stamps[3]
            if a <= b:
                way = 0 if a <= c and a <= d else (2 if c <= d else 3)
            else:
                way = 1 if b <= c and b <= d else (2 if c <= d else 3)
            clock = replace_a[0] + 1
            replace_a[0] = clock
            stamps[way] = clock
            slot = base + way
            victim = lines[slot]
            del line_map[victim]
            evictions += 1
            if dirty[slot]:
                writebacks += 1
        lines[slot] = line_no
        dirty[slot] = dirty_new
        instr[slot] = instr_new
        temps[slot] = temp
        pcs[slot] = pc
        line_map[line_no] = way
        fills += 1
        if is_prefetch:
            prefetch_fills += 1
        return victim

    def fill_lru_line(line_no, dirty_new, instr_new, temp, pc, is_prefetch):
        # replace_kind 1, any associativity, line-number victim: the SLC
        # fill under LRU/FIFO.
        nonlocal fills, prefetch_fills, evictions, writebacks
        set_index = line_no & set_mask
        base = set_index * ways
        if valid_counts[set_index] < ways:
            way = valid.find(0, base, base + ways) - base
            slot = base + way
            valid[slot] = 1
            valid_counts[set_index] += 1
            if policy_insert is not None:
                policy_insert(set_index, way)
            else:
                policy_on_insert(set_index, way, None)
            victim = -1
        else:
            stamps = replace_rows[set_index]
            way = stamps.index(min(stamps))
            clock = replace_a[0] + 1
            replace_a[0] = clock
            stamps[way] = clock
            slot = base + way
            victim = lines[slot]
            del line_map[victim]
            evictions += 1
            if dirty[slot]:
                writebacks += 1
        lines[slot] = line_no
        dirty[slot] = dirty_new
        instr[slot] = instr_new
        temps[slot] = temp
        pcs[slot] = pc
        line_map[line_no] = way
        fills += 1
        if is_prefetch:
            prefetch_fills += 1
        return victim

    def fill_lru_triple(line_no, dirty_new, instr_new, temp, pc, is_prefetch):
        # replace_kind 1, triple victim: the L2 fill under LRU/FIFO.
        nonlocal fills, prefetch_fills, evictions, writebacks
        set_index = line_no & set_mask
        base = set_index * ways
        if valid_counts[set_index] < ways:
            way = valid.find(0, base, base + ways) - base
            slot = base + way
            valid[slot] = 1
            valid_counts[set_index] += 1
            if policy_insert is not None:
                policy_insert(set_index, way)
            else:
                policy_on_insert(set_index, way, None)
            victim = None
        else:
            stamps = replace_rows[set_index]
            way = stamps.index(min(stamps))
            clock = replace_a[0] + 1
            replace_a[0] = clock
            stamps[way] = clock
            slot = base + way
            victim = (lines[slot], instr[slot], pcs[slot])
            del line_map[lines[slot]]
            evictions += 1
            if dirty[slot]:
                writebacks += 1
        lines[slot] = line_no
        dirty[slot] = dirty_new
        instr[slot] = instr_new
        temps[slot] = temp
        pcs[slot] = pc
        line_map[line_no] = way
        fills += 1
        if is_prefetch:
            prefetch_fills += 1
        return victim

    def fill_rrip_triple(line_no, dirty_new, instr_new, temp, pc, is_prefetch):
        # replace_kind 2, triple victim: the L2 fill under static RRIP.
        nonlocal fills, prefetch_fills, evictions, writebacks
        set_index = line_no & set_mask
        base = set_index * ways
        if valid_counts[set_index] < ways:
            way = valid.find(0, base, base + ways) - base
            slot = base + way
            valid[slot] = 1
            valid_counts[set_index] += 1
            if policy_insert is not None:
                policy_insert(set_index, way)
            else:
                policy_on_insert(set_index, way, None)
            victim = None
        else:
            rrpvs = replace_rows[set_index]
            oldest = max(rrpvs)
            if oldest < replace_a:
                delta = replace_a - oldest
                for w in way_range:
                    rrpvs[w] += delta
            way = rrpvs.index(replace_a)
            rrpvs[way] = replace_b
            slot = base + way
            victim = (lines[slot], instr[slot], pcs[slot])
            del line_map[lines[slot]]
            evictions += 1
            if dirty[slot]:
                writebacks += 1
        lines[slot] = line_no
        dirty[slot] = dirty_new
        instr[slot] = instr_new
        temps[slot] = temp
        pcs[slot] = pc
        line_map[line_no] = way
        fills += 1
        if is_prefetch:
            prefetch_fills += 1
        return victim

    def fill_generic(line_no, dirty_new, instr_new, temp, pc, is_prefetch):
        # Unspecialized fallback (any replace kind, either victim shape):
        # exactly the _fill_scalars branch structure.
        nonlocal evictions, writebacks
        set_index = line_no & set_mask
        base = set_index * ways
        victim = None if triple_victim else -1
        hooked = False
        if valid_counts[set_index] < ways:
            way = valid.find(0, base, base + ways) - base
            slot = base + way
            valid[slot] = 1
            valid_counts[set_index] += 1
        else:
            if replace_kind == 1:
                stamps = replace_rows[set_index]
                way = stamps.index(min(stamps))
                clock = replace_a[0] + 1
                replace_a[0] = clock
                stamps[way] = clock
                hooked = True
            elif replace_kind == 2:
                rrpvs = replace_rows[set_index]
                oldest = max(rrpvs)
                if oldest < replace_a:
                    delta = replace_a - oldest
                    for w in way_range:
                        rrpvs[w] += delta
                way = rrpvs.index(replace_a)
                rrpvs[way] = replace_b
                hooked = True
            elif policy_replace is not None:
                way = policy_replace(set_index)
                hooked = True
            else:
                way = policy_victim(set_index)
            slot = base + way
            if triple_victim:
                victim = (lines[slot], instr[slot], pcs[slot])
            else:
                victim = lines[slot]
            del line_map[lines[slot]]
            evictions += 1
            if dirty[slot]:
                writebacks += 1
            if not hooked:
                if evict_rows is not None:
                    evict_rows[set_index][way] = evict_arg
                else:
                    policy_evict(set_index, way, None)
        finish(slot, way, line_no, dirty_new, instr_new, temp, pc, is_prefetch)
        if not hooked:
            if policy_insert is not None:
                policy_insert(set_index, way)
            else:
                policy_on_insert(set_index, way, None)
        return victim

    if replace_kind == 1:
        if triple_victim:
            fill = fill_lru_triple
        elif ways == 4:
            fill = fill_lru4
        else:
            fill = fill_lru_line
    elif replace_kind == 2 and triple_victim:
        fill = fill_rrip_triple
    else:
        fill = fill_generic

    def drain():
        nonlocal fills, prefetch_fills, evictions, writebacks
        out = (fills, prefetch_fills, evictions, writebacks)
        fills = prefetch_fills = evictions = writebacks = 0
        return out

    return fill, drain


def _probe(lines_nd, valid_nd, set_mask, ways, way_offsets, query):
    """Batched tag match: ``(hit, way)`` arrays for the queried line numbers.

    One gather per cache level: the addressed sets' slots are fancy-indexed
    out of the zero-copy column views and compared against the query lines
    across all ways at once.
    """
    idx = (query & set_mask)[:, None] * ways + way_offsets
    match = (lines_nd[idx] == query[:, None]) & (valid_nd[idx] != 0)
    return match.any(axis=1), match.argmax(axis=1)


def run_packed_vector(
    core: CoreModel, trace: PackedTrace, window: int = DEFAULT_WINDOW
) -> CoreResult:
    """Replay a packed trace through the windowed batch kernel.

    Bit-identical to ``core.run_packed(trace)`` for batchable configurations
    (see :func:`unbatchable_reason`); the caller is responsible for checking
    batchability and the absence of an ``l2_access_observer`` first.
    """
    np = _np
    frontend = core.frontend
    backend = core.backend
    branch_unit = core.branch_unit
    hierarchy = core.hierarchy
    frontend.line_stall_cycles.clear()
    frontend.line_miss_counts.clear()
    branches_before = branch_unit.stats.branches
    mispredictions_before = branch_unit.stats.mispredictions

    width = core.config.dispatch_width
    retire_inc = 1.0 / width
    penalty = float(core.config.branch.mispredict_penalty)
    line_size = core.line_size
    line_shift = line_size.bit_length() - 1

    predict_raw = branch_unit.predict_and_update_raw
    backend_stats = backend.stats
    front_stats = frontend.stats
    hier_stats = hierarchy.stats
    remember = frontend._remember_starvation
    line_stall_cycles = frontend.line_stall_cycles
    line_miss_counts = frontend.line_miss_counts
    temp_none = Temperature.NONE

    # Address translation (None = identity, the zero-overhead default).
    # Under the MMU the decode stage mirrors the scalar fast paths exactly:
    # instruction lines translate once per new line through the frontend's
    # request cache (whose entries `remember` pops on starvation flips, so
    # rebuilds — and their hint/temperature — stay in sync with the scalar
    # loop), data addresses translate per access.
    translate = None
    translate_data = None
    if type(frontend.translator) is not IdentityTranslator:
        translate = frontend.translator.translate_instruction
        request_cache = frontend._request_cache
        starved_lines = frontend._starved_lines
        ifetch_type = AccessType.INSTRUCTION_FETCH
    if type(backend.translator) is not IdentityTranslator:
        translate_data = backend._translate_data_addr
        if translate_data is None:
            translate_data_full = backend.translator.translate_data

            def translate_data(vaddr, _full=translate_data_full):
                return _full(vaddr)[0]

    sizes = trace.size
    targets = trace.branch_target
    mems = trace.mem_address
    depends = trace.depend_stall
    issues = trace.issue_stall
    mem_lines = trace.mem_lines(line_size)
    instructions = len(trace.pc)

    # ---- caches: views, residency dicts, touch specs, fill closures -----
    l1i = hierarchy.l1i
    l1d = hierarchy.l1d
    l2 = hierarchy.l2
    slc = hierarchy.slc
    l1i_map = l1i._line_map
    l1d_map = l1d._line_map
    l2_map = l2._line_map
    slc_map = slc._line_map
    l1i_mask, l1i_ways = l1i._set_mask, l1i.associativity
    l1d_mask, l1d_ways = l1d._set_mask, l1d.associativity
    l2_mask, l2_ways = l2._set_mask, l2.associativity
    slc_mask, slc_ways = slc._set_mask, slc.associativity
    l1i_offsets = np.arange(l1i_ways)
    l1d_offsets = np.arange(l1d_ways)
    l2_offsets = np.arange(l2_ways)
    slc_offsets = np.arange(slc_ways)
    l1i_dirty = l1i._dirty
    l1d_dirty = l1d._dirty
    l2_dirty = l2._dirty
    slc_dirty = slc._dirty

    # Touch dispatch scalars (kind 0 = call hook, 1 = const, 2 = clock,
    # 3 = no-op), hoisted per cache exactly as the scalar fast paths do.
    l1i_tk, l1i_rows, l1i_arg = l1i._touch_kind, l1i._touch_rows, l1i._touch_arg
    l1d_tk, l1d_rows, l1d_arg = l1d._touch_kind, l1d._touch_rows, l1d._touch_arg
    l2_tk, l2_rows, l2_arg = l2._touch_kind, l2._touch_rows, l2._touch_arg
    slc_tk, slc_rows, slc_arg = slc._touch_kind, slc._touch_rows, slc._touch_arg
    l1i_touch = l1i._policy_touch
    l1d_touch = l1d._policy_touch
    l2_touch = l2._policy_touch
    slc_touch = slc._policy_touch

    fill_l1i, drain_l1i = _make_filler(l1i, triple_victim=False)
    fill_l1d, drain_l1d = _make_filler(l1d, triple_victim=False)
    fill_l2, drain_l2 = _make_filler(l2, triple_victim=True)
    fill_slc, drain_slc = _make_filler(slc, triple_victim=False)
    l1i_invalidate = l1i.invalidate_line
    l1d_invalidate = l1d.invalidate_line
    slc_invalidate = slc.invalidate_line
    l2_inclusive = hierarchy._l2_inclusive
    slc_exclusive = hierarchy._slc_exclusive

    # Latency / stall tables per servicing level (index 1..4); identical
    # float operations to the scalar paths, performed once.
    lat_l1i = hierarchy._lat_l1i
    lat_l1d = hierarchy._lat_l1d
    lat_l2 = hierarchy._lat_l2
    lat_slc = hierarchy._lat_slc
    lat_dram = hierarchy._lat_dram
    lat_fetch = (
        0,
        lat_l1i,
        lat_l1i + lat_l2,
        lat_l1i + lat_l2 + lat_slc,
        lat_l1i + lat_l2 + lat_slc + lat_dram,
    )
    lat_data = (
        0,
        lat_l1d,
        lat_l1d + lat_l2,
        lat_l1d + lat_l2 + lat_slc,
        lat_l1d + lat_l2 + lat_slc + lat_dram,
    )
    hidden = frontend._hidden_latency
    stall_fetch = tuple(float(lat) - hidden for lat in lat_fetch)
    hide = backend._hide_latency
    scale = backend._stall_scale
    stall_load = [0.0] * 5
    stall_store = [0.0] * 5
    for level in range(1, 5):
        exposed = lat_data[level] - hide
        if exposed > 0:
            stall = float(exposed) * scale
            stall_load[level] = stall
            stall_store[level] = stall * 0.5

    # Prefetcher observes (pre-bound closures or None; gate guarantees they
    # ignore the hit flag, so decode-time observation is exact).
    l1i_observe = hierarchy._l1i_observe
    l1d_observe = hierarchy._l1d_observe
    l2_observe = hierarchy._l2_observe
    observe_scratch = ScratchRequest()

    # Per-run Top-Down accumulators (same order of accumulation as scalar).
    ifetch_acc = 0.0
    mispred_acc = 0.0
    depend_acc = 0.0
    issue_acc = 0.0
    mem_acc = 0.0
    #: Integer depend/issue stat totals, folded once (order-independent);
    #: the float Top-Down accumulators above still add in scalar order.
    depend_total = 0
    issue_total = 0
    #: The order-dependent float stall sums, hoisted out of the stats
    #: objects: the per-op adds happen on these locals — in exactly the
    #: scalar sequence, so the totals stay bit-identical — and are stored
    #: back once per run.
    ifetch_stall_total = front_stats.ifetch_stall_cycles
    mem_stall_total = backend_stats.mem_stall_cycles
    current_line = -1

    int8 = np.int8
    int64 = np.int64
    intp = np.intp

    for ev_indices, ev_pcs, ev_flags, ev_lines in trace.event_windows(
        line_size, window
    ):
        # ---- stage 1: decode the window into an ordered op stream --------
        op_kind: list[int] = []
        op_line: list[int] = []
        op_pc: list[int] = []
        op_store: list[int] = []
        op_temp: list = []
        kind_append = op_kind.append
        line_append = op_line.append
        pc_append = op_pc.append
        store_append = op_store.append
        temp_append = op_temp.append
        for index, pc, flags, fetch_line in zip(
            ev_indices, ev_pcs, ev_flags, ev_lines
        ):
            if fetch_line != current_line:
                current_line = fetch_line
                if translate is None:
                    fetch_paddr = fetch_line
                    temp = temp_none
                else:
                    # Mirror of FetchEngine.fetch_line_fast's translation
                    # caching: one translate per new virtual line, with the
                    # built request cached so MMU counters and rebuilt-hint
                    # requests track the scalar loop.
                    cached = request_cache.get(fetch_line)
                    if cached is None:
                        paddr, temperature = translate(fetch_line)
                        cached = (
                            MemoryRequest(
                                address=paddr,
                                access_type=ifetch_type,
                                pc=fetch_line,
                                temperature=temperature,
                                starvation_hint=fetch_line in starved_lines,
                            ),
                            paddr >> line_shift,
                        )
                        request_cache[fetch_line] = cached
                    fetch_paddr = cached[1] << line_shift
                    temp = cached[0].temperature
                kind_append(_K_IFETCH)
                line_append(fetch_paddr >> line_shift)
                pc_append(fetch_line)
                store_append(0)
                temp_append(temp)
                if l1i_observe is not None:
                    observe_scratch.address = fetch_paddr
                    observe_scratch.pc = fetch_line
                    for target in l1i_observe(observe_scratch, False):
                        kind_append(_K_PF_INST)
                        line_append(target >> line_shift)
                        pc_append(fetch_line)
                        store_append(0)
                        temp_append(temp)
                if l2_observe is not None:
                    observe_scratch.address = fetch_paddr
                    observe_scratch.pc = fetch_line
                    for target in l2_observe(observe_scratch, False):
                        kind_append(_K_PF_INST)
                        line_append(target >> line_shift)
                        pc_append(fetch_line)
                        store_append(0)
                        temp_append(temp)

            if flags:
                if flags & FLAG_BRANCH:
                    outcome = predict_raw(
                        pc,
                        sizes[index],
                        flags & FLAG_TAKEN != 0,
                        targets[index],
                        flags & FLAG_INDIRECT != 0,
                        flags & FLAG_CALL != 0,
                        flags & FLAG_RETURN != 0,
                    )
                    if outcome[2]:
                        mispred_acc += penalty
                    if flags & FLAG_TAKEN:
                        # Fetch redirects to the branch target.
                        current_line = -1
                if flags & FLAG_MEM:
                    store = 1 if flags & FLAG_STORE else 0
                    vaddr = mems[index]
                    if translate_data is None:
                        data_addr = vaddr
                        data_line = mem_lines[index]
                    else:
                        # Per access, like BackendModel.access_data_fast
                        # (data pages carry no temperature).
                        data_addr = translate_data(vaddr)
                        data_line = data_addr >> line_shift
                    kind_append(_K_DATA)
                    line_append(data_line)
                    pc_append(pc)
                    store_append(store)
                    temp_append(temp_none)
                    if l1d_observe is not None:
                        observe_scratch.address = data_addr
                        observe_scratch.pc = pc
                        for target in l1d_observe(observe_scratch, False):
                            kind_append(_K_PF_DATA)
                            line_append(target >> line_shift)
                            pc_append(pc)
                            store_append(store)
                            temp_append(temp_none)
                    if l2_observe is not None:
                        observe_scratch.address = data_addr
                        observe_scratch.pc = pc
                        for target in l2_observe(observe_scratch, False):
                            kind_append(_K_PF_DATA)
                            line_append(target >> line_shift)
                            pc_append(pc)
                            store_append(store)
                            temp_append(temp_none)
                if flags & FLAG_DEPEND:
                    cycles = depends[index]
                    depend_total += cycles
                    depend_acc += cycles
                if flags & FLAG_ISSUE:
                    cycles = issues[index]
                    issue_total += cycles
                    issue_acc += cycles

        if not op_kind:
            continue

        # ---- stage 2: batched probes over the pre-window cache state -----
        # The tag columns are snapshotted per window (plain-list columns;
        # the copy is noise next to the gathers).
        q_lines = np.array(op_line, dtype=int64)
        kinds_nd = np.array(op_kind, dtype=int8)
        level_nd = np.full(len(op_kind), 4, dtype=int8)
        way_nd = np.zeros(len(op_kind), dtype=intp)
        inst_mask = (kinds_nd & 1) == 0
        ii = np.nonzero(inst_mask)[0]
        if ii.size:
            l1i_lines, l1i_valid = l1i.tag_arrays()
            hit, way = _probe(
                l1i_lines, l1i_valid, l1i_mask, l1i_ways, l1i_offsets, q_lines[ii]
            )
            hits = ii[hit]
            level_nd[hits] = 1
            way_nd[hits] = way[hit]
        di = np.nonzero(~inst_mask)[0]
        if di.size:
            l1d_lines, l1d_valid = l1d.tag_arrays()
            hit, way = _probe(
                l1d_lines, l1d_valid, l1d_mask, l1d_ways, l1d_offsets, q_lines[di]
            )
            hits = di[hit]
            level_nd[hits] = 1
            way_nd[hits] = way[hit]
        rem = np.nonzero(level_nd != 1)[0]
        if rem.size:
            l2_lines, l2_valid = l2.tag_arrays()
            hit, way = _probe(
                l2_lines, l2_valid, l2_mask, l2_ways, l2_offsets, q_lines[rem]
            )
            hits = rem[hit]
            level_nd[hits] = 2
            way_nd[hits] = way[hit]
            rem = rem[~hit]
            if rem.size:
                slc_lines, slc_valid = slc.tag_arrays()
                hit, way = _probe(
                    slc_lines, slc_valid, slc_mask, slc_ways, slc_offsets,
                    q_lines[rem],
                )
                hits = rem[hit]
                level_nd[hits] = 3
                way_nd[hits] = way[hit]
        counts = np.bincount(
            kinds_nd.astype(int8) * 5 + level_nd, minlength=20
        ).tolist()
        levels = level_nd.tolist()
        ways_list = way_nd.tolist()

        # ---- stage 3: apply the ops in order against the live columns ----
        touched: set[int] = set()
        touched_add = touched.add
        for kind, line, pc, store, temp, level, way in zip(
            op_kind, op_line, op_pc, op_store, op_temp, levels, ways_list
        ):
            if line in touched:
                # Residency changed since the batched probe: re-derive the
                # servicing level/way from the authoritative dicts.
                counts[kind * 5 + level] -= 1
                way = (l1i_map if kind & 1 == 0 else l1d_map).get(line)
                if way is not None:
                    level = 1
                else:
                    way = l2_map.get(line)
                    if way is not None:
                        level = 2
                    else:
                        way = slc_map.get(line)
                        if way is not None:
                            level = 3
                        else:
                            level = 4
                counts[kind * 5 + level] += 1

            if level == 1:
                # L1 hit: dirty bit + inline replacement touch.
                if kind & 1:
                    if store:
                        l1d_dirty[(line & l1d_mask) * l1d_ways + way] = 1
                    if l1d_tk == 2:
                        clock = l1d_arg[0] + 1
                        l1d_arg[0] = clock
                        l1d_rows[line & l1d_mask][way] = clock
                    elif l1d_tk == 1:
                        l1d_rows[line & l1d_mask][way] = l1d_arg
                    elif l1d_tk == 0:
                        l1d_touch(line & l1d_mask, way)
                    if kind == _K_DATA:
                        stall = stall_store[1] if store else stall_load[1]
                        if stall > 0.0:
                            mem_stall_total += stall
                            mem_acc += stall
                else:
                    if l1i_tk == 2:
                        clock = l1i_arg[0] + 1
                        l1i_arg[0] = clock
                        l1i_rows[line & l1i_mask][way] = clock
                    elif l1i_tk == 1:
                        l1i_rows[line & l1i_mask][way] = l1i_arg
                    elif l1i_tk == 0:
                        l1i_touch(line & l1i_mask, way)
                    if kind == _K_IFETCH:
                        stall = stall_fetch[1]
                        if stall > 0.0:
                            # op_pc holds the *virtual* fetch line (equal to
                            # the physical one under identity translation):
                            # stall attribution is per virtual line.
                            vline = pc
                            ifetch_stall_total += stall
                            line_stall_cycles[vline] = (
                                line_stall_cycles.get(vline, 0.0) + stall
                            )
                            line_miss_counts[vline] = (
                                line_miss_counts.get(vline, 0) + 1
                            )
                            ifetch_acc += stall
                continue

            # L1 miss: inlined hierarchy walk below L1.
            inst = kind & 1 == 0
            is_pf = kind >= 2
            touched_add(line)
            instr_new = 1 if inst else 0
            l1_fill = fill_l1i if inst else fill_l1d
            if level == 2:
                # L2 hit.
                set2 = line & l2_mask
                if store:
                    l2_dirty[set2 * l2_ways + way] = 1
                if l2_tk == 1:
                    l2_rows[set2][way] = l2_arg
                elif l2_tk == 2:
                    clock = l2_arg[0] + 1
                    l2_arg[0] = clock
                    l2_rows[set2][way] = clock
                elif l2_tk == 0:
                    l2_touch(set2, way)
                v = l1_fill(line, store, instr_new, temp, pc, is_pf)
                if v >= 0:
                    touched_add(v)
            elif level == 3:
                # SLC hit (exclusive: the line moves up into L2 + L1).
                set3 = line & slc_mask
                if store:
                    slc_dirty[set3 * slc_ways + way] = 1
                if slc_tk == 2:
                    clock = slc_arg[0] + 1
                    slc_arg[0] = clock
                    slc_rows[set3][way] = clock
                elif slc_tk == 1:
                    slc_rows[set3][way] = slc_arg
                elif slc_tk == 0:
                    slc_touch(set3, way)
                if slc_exclusive:
                    slc_invalidate(line)
                victim = fill_l2(line, store, instr_new, temp, pc, is_pf)
                if victim is not None:
                    victim_line, victim_instr, victim_pc = victim
                    touched_add(victim_line)
                    if l2_inclusive:
                        if victim_line in l1i_map:
                            l1i_invalidate(victim_line)
                        if victim_line in l1d_map:
                            l1d_invalidate(victim_line)
                    if slc_exclusive:
                        v = fill_slc(
                            victim_line, 0, 1 if victim_instr else 0,
                            temp_none, victim_pc, True,
                        )
                        if v >= 0:
                            touched_add(v)
                v = l1_fill(line, store, instr_new, temp, pc, is_pf)
                if v >= 0:
                    touched_add(v)
            else:
                # Serviced by DRAM.
                victim = fill_l2(line, store, instr_new, temp, pc, is_pf)
                if victim is not None:
                    victim_line, victim_instr, victim_pc = victim
                    touched_add(victim_line)
                    if l2_inclusive:
                        if victim_line in l1i_map:
                            l1i_invalidate(victim_line)
                        if victim_line in l1d_map:
                            l1d_invalidate(victim_line)
                    if slc_exclusive:
                        v = fill_slc(
                            victim_line, 0, 1 if victim_instr else 0,
                            temp_none, victim_pc, True,
                        )
                        if v >= 0:
                            touched_add(v)
                if not slc_exclusive:
                    v = fill_slc(line, store, instr_new, temp, pc, is_pf)
                    if v >= 0:
                        touched_add(v)
                v = l1_fill(line, store, instr_new, temp, pc, is_pf)
                if v >= 0:
                    touched_add(v)

            # Demand stall accounting (per op, in scalar float order).
            if kind == _K_IFETCH:
                vline = pc
                if level >= 3:
                    remember(vline)
                stall = stall_fetch[level]
                if stall > 0.0:
                    ifetch_stall_total += stall
                    line_stall_cycles[vline] = (
                        line_stall_cycles.get(vline, 0.0) + stall
                    )
                    line_miss_counts[vline] = line_miss_counts.get(vline, 0) + 1
                    ifetch_acc += stall
            elif kind == _K_DATA:
                stall = stall_store[level] if store else stall_load[level]
                if stall > 0.0:
                    mem_stall_total += stall
                    mem_acc += stall

        # ---- stage 4: fold the window's order-independent counters -------
        c01, c02, c03, c04 = counts[1], counts[2], counts[3], counts[4]
        c11, c12, c13, c14 = counts[6], counts[7], counts[8], counts[9]
        c21, c22, c23, c24 = counts[11], counts[12], counts[13], counts[14]
        c31, c32, c33, c34 = counts[16], counts[17], counts[18], counts[19]
        fetches = c01 + c02 + c03 + c04
        data_ops = c11 + c12 + c13 + c14
        front_stats.demand_fetches += fetches
        front_stats.starvation_events += c03 + c04
        backend_stats.data_accesses += data_ops
        hier_stats.instruction_fetches += fetches
        hier_stats.data_accesses += data_ops
        hier_stats.prefetches_issued += (
            c21 + c22 + c23 + c24 + c31 + c32 + c33 + c34
        )
        hier_stats.l1i_misses += c02 + c03 + c04
        hier_stats.l1d_misses += c12 + c13 + c14
        hier_stats.l2_inst_misses += c03 + c04 + c23 + c24
        hier_stats.l2_data_misses += c13 + c14
        hier_stats.slc_misses += c04 + c14
        hier_stats.dram_accesses += c04 + c14
        hier_stats.total_latency += (
            c01 * lat_fetch[1]
            + c02 * lat_fetch[2]
            + c03 * lat_fetch[3]
            + c04 * lat_fetch[4]
            + c11 * lat_data[1]
            + c12 * lat_data[2]
            + c13 * lat_data[3]
            + c14 * lat_data[4]
        )
        l1i_stats = l1i.stats
        l1i_stats.inst_hits += c01
        l1i_stats.inst_misses += c02 + c03 + c04
        l1i_stats.prefetch_hits += c21
        l1i_stats.prefetch_misses += c22 + c23 + c24
        l1d_stats = l1d.stats
        l1d_stats.data_hits += c11
        l1d_stats.data_misses += c12 + c13 + c14
        l1d_stats.prefetch_hits += c31
        l1d_stats.prefetch_misses += c32 + c33 + c34
        l2_stats = l2.stats
        l2_stats.inst_hits += c02
        l2_stats.inst_misses += c03 + c04
        l2_stats.data_hits += c12
        l2_stats.data_misses += c13 + c14
        l2_stats.prefetch_hits += c22 + c32
        l2_stats.prefetch_misses += c23 + c24 + c33 + c34
        slc_stats = slc.stats
        slc_stats.inst_hits += c03
        slc_stats.inst_misses += c04
        slc_stats.data_hits += c13
        slc_stats.data_misses += c14
        slc_stats.prefetch_hits += c23 + c33
        slc_stats.prefetch_misses += c24 + c34

    # Store back the hoisted stall sums and fold the order-independent
    # integer totals.
    front_stats.ifetch_stall_cycles = ifetch_stall_total
    backend_stats.mem_stall_cycles = mem_stall_total
    backend_stats.depend_stall_cycles += depend_total
    backend_stats.issue_stall_cycles += issue_total

    # Fold the fill counters accumulated by the per-cache fill closures.
    for cache, drain in (
        (l1i, drain_l1i),
        (l1d, drain_l1d),
        (l2, drain_l2),
        (slc, drain_slc),
    ):
        stats = cache.stats
        fills, prefetch_fills, evictions, writebacks = drain()
        stats.fills += fills
        stats.prefetch_fills += prefetch_fills
        stats.evictions += evictions
        stats.writebacks += writebacks

    retire = _retire_total(retire_inc, instructions)
    topdown = TopDownBreakdown(
        retire=retire,
        ifetch=ifetch_acc,
        mispred=mispred_acc,
        depend=depend_acc,
        issue=issue_acc,
        mem=mem_acc,
    )
    return CoreResult(
        instructions=instructions,
        cycles=topdown.total_cycles,
        topdown=topdown,
        branches=branch_unit.stats.branches - branches_before,
        branch_mispredictions=(
            branch_unit.stats.mispredictions - mispredictions_before
        ),
        line_stall_cycles=dict(frontend.line_stall_cycles),
        line_miss_counts=dict(frontend.line_miss_counts),
    )
