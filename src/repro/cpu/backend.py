"""CPU backend model: data-side memory accesses and out-of-order overlap.

The backend is modelled mechanistically (interval-style): every data access
goes through the MMU and cache hierarchy, and the resulting latency is charged
as backend ``mem`` stall cycles only to the extent the out-of-order window
cannot hide it.  Modern cores hide most L2-hit latency but expose a growing
fraction of SLC/DRAM latency as the ROB fills — which is why the paper argues
trading a small data MPKI increase for a large instruction MPKI reduction is
profitable (Section 4.4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.hierarchy import CacheHierarchy
from repro.common.addressing import CACHE_LINE_SIZE, line_address
from repro.common.request import (
    AccessResult,
    AccessType,
    MemoryRequest,
    ScratchRequest,
)
from repro.common.translation import AddressTranslator, IdentityTranslator


@dataclass
class BackendConfig:
    """Backend (OoO execution) model parameters."""

    rob_entries: int = 128
    #: Latency (cycles) fully hidden by out-of-order execution / MLP.
    hide_latency: int = 24
    #: Fraction of the *exposed* data-access latency that still overlaps with
    #: useful work (memory-level parallelism).  0.0 = fully exposed.
    overlap_fraction: float = 0.85

    def validate(self) -> None:
        if self.rob_entries <= 0:
            raise ValueError("rob_entries must be positive")
        if self.hide_latency < 0:
            raise ValueError("hide_latency must be non-negative")
        if not 0.0 <= self.overlap_fraction < 1.0:
            raise ValueError("overlap_fraction must be in [0, 1)")


@dataclass
class BackendStats:
    """Counters kept by the backend model."""

    data_accesses: int = 0
    mem_stall_cycles: float = 0.0
    depend_stall_cycles: float = 0.0
    issue_stall_cycles: float = 0.0


@dataclass
class DataAccessOutcome:
    """Result of one data-side access."""

    stall_cycles: float
    result: AccessResult


class BackendModel:
    """Charges backend stalls for data accesses and synthetic hazards."""

    def __init__(
        self,
        hierarchy: CacheHierarchy,
        translator: AddressTranslator | None = None,
        config: BackendConfig | None = None,
        line_size: int = CACHE_LINE_SIZE,
        core: int = 0,
    ) -> None:
        self.hierarchy = hierarchy
        self.translator = translator or IdentityTranslator()
        self.config = config or BackendConfig()
        self.config.validate()
        self.line_size = line_size
        #: Issuing core index, stamped into every request (multi-core mode).
        self.core = core
        self.stats = BackendStats()
        #: Reusable request object for the packed-trace data fast path.
        self._scratch = ScratchRequest()
        self._scratch.core = core
        #: Identity translation (no OS model): physical == virtual, so the
        #: fast path skips the per-access translator call entirely.
        self._identity = type(self.translator) is IdentityTranslator
        #: Address-only data translation, when the translator offers it
        #: (avoids one tuple allocation per data access on the fast path).
        self._translate_data_addr = getattr(
            self.translator, "translate_data_addr", None
        )
        # Config scalars hoisted for the fast path (the config object is
        # treated as frozen once the model is built, like the hierarchy's
        # precomputed latencies).
        self._hide_latency = self.config.hide_latency
        self._stall_scale = 1.0 - self.config.overlap_fraction
        #: The data fast path as a closure over stable model state (stats is
        #: reset in place, so every captured object keeps its identity).
        self.access_data_fast = self._make_data_fast()

    def access_data(self, vaddr: int, pc: int, is_store: bool) -> DataAccessOutcome:
        """Issue a data load/store and return the exposed stall cycles."""
        paddr, _temperature = self.translator.translate_data(vaddr)
        request = MemoryRequest(
            address=paddr,
            access_type=AccessType.DATA_STORE if is_store else AccessType.DATA_LOAD,
            pc=pc,
            core=self.core,
        )
        result = self.hierarchy.access_data(request)
        self.stats.data_accesses += 1

        exposed = max(0.0, float(result.latency - self.config.hide_latency))
        stall = exposed * (1.0 - self.config.overlap_fraction)
        # Stores retire through the store buffer; expose only half their cost.
        if is_store:
            stall *= 0.5
        self.stats.mem_stall_cycles += stall
        return DataAccessOutcome(stall_cycles=stall, result=result)

    def _make_data_fast(self):
        """Build the data fast path (twin of :meth:`access_data`) as a closure.

        Used by the packed-trace replay loop: repeat L1-D hits skip the full
        hierarchy walk, and the request travels as a reused
        :class:`ScratchRequest` so no outcome or request object is allocated.
        All state updates are identical to the slow path; custom
        ``l2_access_observer`` hooks must not retain the request.

        The returned callable has signature
        ``access_data_fast(vaddr, pc, is_store, line_no=-1)`` where
        ``line_no`` is the *virtual* line number precomputed by the trace's
        geometry columns; it equals the physical line number exactly when no
        OS model remaps pages, so it is forwarded to the hierarchy only under
        identity translation.
        """
        scratch = self._scratch
        hierarchy_fast = self.hierarchy.access_data_fast
        stats = self.stats
        identity = self._identity
        translate = self._translate_data_addr
        translate_full = self.translator.translate_data
        hide_latency = self._hide_latency
        stall_scale = self._stall_scale
        store_type = AccessType.DATA_STORE
        load_type = AccessType.DATA_LOAD

        def access_data_fast(
            vaddr: int, pc: int, is_store: bool, line_no: int = -1
        ) -> float:
            if identity:
                paddr = vaddr
            else:
                if translate is not None:
                    paddr = translate(vaddr)
                else:
                    paddr, _temperature = translate_full(vaddr)
                line_no = -1
            scratch.address = paddr
            scratch.access_type = store_type if is_store else load_type
            scratch.pc = pc
            latency = hierarchy_fast(scratch, line_no)
            stats.data_accesses += 1

            exposed = latency - hide_latency
            if exposed <= 0:
                return 0.0
            stall = float(exposed) * stall_scale
            # Stores retire through the store buffer; expose half their cost.
            if is_store:
                stall *= 0.5
            stats.mem_stall_cycles += stall
            return stall

        return access_data_fast

    def charge_depend_stall(self, cycles: float) -> float:
        """Account synthetic dependency-chain stalls from the trace."""
        if cycles < 0:
            raise ValueError("stall cycles must be non-negative")
        self.stats.depend_stall_cycles += cycles
        return cycles

    def charge_issue_stall(self, cycles: float) -> float:
        """Account synthetic issue-queue-full stalls from the trace."""
        if cycles < 0:
            raise ValueError("stall cycles must be non-negative")
        self.stats.issue_stall_cycles += cycles
        return cycles

    def reset(self) -> None:
        # In place: the fast-path closure captures the stats object.
        stats = self.stats
        stats.data_accesses = 0
        stats.mem_stall_cycles = 0.0
        stats.depend_stall_cycles = 0.0
        stats.issue_stall_cycles = 0.0
