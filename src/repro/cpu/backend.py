"""CPU backend model: data-side memory accesses and out-of-order overlap.

The backend is modelled mechanistically (interval-style): every data access
goes through the MMU and cache hierarchy, and the resulting latency is charged
as backend ``mem`` stall cycles only to the extent the out-of-order window
cannot hide it.  Modern cores hide most L2-hit latency but expose a growing
fraction of SLC/DRAM latency as the ROB fills — which is why the paper argues
trading a small data MPKI increase for a large instruction MPKI reduction is
profitable (Section 4.4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.hierarchy import CacheHierarchy
from repro.common.addressing import CACHE_LINE_SIZE, line_address
from repro.common.request import (
    AccessResult,
    AccessType,
    MemoryRequest,
    ScratchRequest,
)
from repro.common.translation import AddressTranslator, IdentityTranslator


@dataclass
class BackendConfig:
    """Backend (OoO execution) model parameters."""

    rob_entries: int = 128
    #: Latency (cycles) fully hidden by out-of-order execution / MLP.
    hide_latency: int = 24
    #: Fraction of the *exposed* data-access latency that still overlaps with
    #: useful work (memory-level parallelism).  0.0 = fully exposed.
    overlap_fraction: float = 0.85

    def validate(self) -> None:
        if self.rob_entries <= 0:
            raise ValueError("rob_entries must be positive")
        if self.hide_latency < 0:
            raise ValueError("hide_latency must be non-negative")
        if not 0.0 <= self.overlap_fraction < 1.0:
            raise ValueError("overlap_fraction must be in [0, 1)")


@dataclass
class BackendStats:
    """Counters kept by the backend model."""

    data_accesses: int = 0
    mem_stall_cycles: float = 0.0
    depend_stall_cycles: float = 0.0
    issue_stall_cycles: float = 0.0


@dataclass
class DataAccessOutcome:
    """Result of one data-side access."""

    stall_cycles: float
    result: AccessResult


class BackendModel:
    """Charges backend stalls for data accesses and synthetic hazards."""

    def __init__(
        self,
        hierarchy: CacheHierarchy,
        translator: AddressTranslator | None = None,
        config: BackendConfig | None = None,
        line_size: int = CACHE_LINE_SIZE,
    ) -> None:
        self.hierarchy = hierarchy
        self.translator = translator or IdentityTranslator()
        self.config = config or BackendConfig()
        self.config.validate()
        self.line_size = line_size
        self.stats = BackendStats()
        #: Reusable request object for the packed-trace data fast path.
        self._scratch = ScratchRequest()
        #: Address-only data translation, when the translator offers it
        #: (avoids one tuple allocation per data access on the fast path).
        self._translate_data_addr = getattr(
            self.translator, "translate_data_addr", None
        )

    def access_data(self, vaddr: int, pc: int, is_store: bool) -> DataAccessOutcome:
        """Issue a data load/store and return the exposed stall cycles."""
        paddr, _temperature = self.translator.translate_data(vaddr)
        request = MemoryRequest(
            address=paddr,
            access_type=AccessType.DATA_STORE if is_store else AccessType.DATA_LOAD,
            pc=pc,
        )
        result = self.hierarchy.access_data(request)
        self.stats.data_accesses += 1

        exposed = max(0.0, float(result.latency - self.config.hide_latency))
        stall = exposed * (1.0 - self.config.overlap_fraction)
        # Stores retire through the store buffer; expose only half their cost.
        if is_store:
            stall *= 0.5
        self.stats.mem_stall_cycles += stall
        return DataAccessOutcome(stall_cycles=stall, result=result)

    def access_data_fast(self, vaddr: int, pc: int, is_store: bool) -> float:
        """Issue a data access and return only the exposed stall cycles.

        Fast-path twin of :meth:`access_data` used by the packed-trace replay
        loop: repeat L1-D hits skip the full hierarchy walk, and the request
        travels as a reused :class:`ScratchRequest` so no outcome or request
        object is allocated.  All state updates are identical to the slow
        path; custom ``l2_access_observer`` hooks must not retain the request.
        """
        translate = self._translate_data_addr
        if translate is not None:
            paddr = translate(vaddr)
        else:
            paddr, _temperature = self.translator.translate_data(vaddr)
        request = self._scratch
        request.address = paddr
        request.access_type = (
            AccessType.DATA_STORE if is_store else AccessType.DATA_LOAD
        )
        request.pc = pc
        latency = self.hierarchy.access_data_fast(request)
        stats = self.stats
        stats.data_accesses += 1

        exposed = max(0.0, float(latency - self.config.hide_latency))
        stall = exposed * (1.0 - self.config.overlap_fraction)
        # Stores retire through the store buffer; expose only half their cost.
        if is_store:
            stall *= 0.5
        stats.mem_stall_cycles += stall
        return stall

    def charge_depend_stall(self, cycles: float) -> float:
        """Account synthetic dependency-chain stalls from the trace."""
        if cycles < 0:
            raise ValueError("stall cycles must be non-negative")
        self.stats.depend_stall_cycles += cycles
        return cycles

    def charge_issue_stall(self, cycles: float) -> float:
        """Account synthetic issue-queue-full stalls from the trace."""
        if cycles < 0:
            raise ValueError("stall cycles must be non-negative")
        self.stats.issue_stall_cycles += cycles
        return cycles

    def reset(self) -> None:
        self.stats = BackendStats()
