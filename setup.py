"""Setuptools shim.

The project is fully described by ``pyproject.toml``; this file exists so the
package can be installed editable (``pip install -e .``) on environments whose
setuptools/pip lack PEP 660 editable-wheel support (e.g. offline machines
without the ``wheel`` package).
"""

from setuptools import setup

setup()
