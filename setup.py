"""Package metadata and the ``repro`` console entry point.

Install editable with ``pip install -e .``; that puts the ``repro`` command
on PATH (``repro list`` / ``repro run figure3`` / ...).  Without installing,
the same CLI is reachable as ``PYTHONPATH=src python -m repro.cli``.
"""

from setuptools import find_packages, setup

setup(
    name="repro-trrip",
    version="0.3.0",
    description=(
        "Reproduction of TRRIP: temperature-based code-cache replacement "
        "via a compiler/OS/hardware co-design (simulator + experiments)"
    ),
    python_requires=">=3.10",
    # The simulator is dependency-free; NumPy only unlocks the vectorized
    # batch replay kernel (engine=vector/auto falls back to the scalar loop
    # without it, bit-identically).
    extras_require={"fast": ["numpy"]},
    package_dir={"": "src"},
    packages=find_packages("src"),
    entry_points={
        "console_scripts": [
            "repro=repro.cli.main:main",
        ]
    },
)
