#!/usr/bin/env python3
"""Drive the experiment registry and result store from library code.

Everything ``repro run`` does is available programmatically: pick an
experiment from the central registry, run it through a
:class:`~repro.api.session.Session` that carries a
:class:`~repro.experiments.store.ResultStore`, and re-run it to see the
whole sweep served from the cache.

Run with:  python examples/cached_experiments.py
"""

from __future__ import annotations

import tempfile

from repro.api import Session
from repro.experiments import ExperimentContext, ResultStore, get_experiment
from repro.sim.config import SimulatorConfig
from repro.workloads.spec import tiny_spec


def run_once(store_root: str, label: str) -> None:
    experiment = get_experiment("table3")
    config = SimulatorConfig.scaled()
    session = Session(config=config, store=ResultStore(store_root))
    context = ExperimentContext(
        config=config, session=session, benchmarks=[tiny_spec()]
    )
    result = experiment.run(context)
    print(f"--- {label}: {experiment.artifact} ({experiment.description})")
    print(experiment.format(result))
    print(
        f"{label}: {session.store.misses} simulated, "
        f"{session.store.hits} served from the store\n"
    )


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro-store-") as store_root:
        run_once(store_root, "first run")
        # Same inputs, fresh session: every (benchmark, policy) point hits.
        run_once(store_root, "second run")


if __name__ == "__main__":
    main()
