#!/usr/bin/env python3
"""Quickstart for interleaved multi-core simulation and way partitioning.

Two cores replay independent workloads over private L1s and one shared
L2/SLC.  This script shows the three headline properties and asserts each
one, so it doubles as a CI smoke check:

1. **Contention is real** — a co-run of two contending workloads produces
   non-zero inter-core evictions (core A evicting lines core B filled) and
   slows both cores down relative to their solo runs.
2. **Partitioning isolates** — `partition:ways=...,base=lru` confines each
   core to its own L2 ways, collapsing inter-core evictions.
3. **N=1 degenerates exactly** — a one-core `cores=[x]` scenario is
   bit-identical to the legacy single-core `benchmarks=[x]` scenario.

Run with:  python examples/contention_quickstart.py
"""

from __future__ import annotations

from repro.api import Scenario, Session
from repro.workloads.spec import tiny_spec

#: A cache-sensitive skewed-reuse stream next to a streaming scan, small
#: enough to finish in seconds.
CORES = (
    "zipf:alpha=1.2,instructions=24000,warmup=4000",
    "streaming:instructions=24000,warmup=4000",
)


def corun(session: Session, policy: str):
    [artifacts] = session.run(
        Scenario(cores=CORES, interleave=(1, 1), policies=(policy,))
    )
    return artifacts.result


def solo_ipcs(session: Session, policy: str) -> list[float]:
    results = session.run(Scenario(benchmarks=CORES, policies=(policy,)))
    return [artifacts.result.ipc for artifacts in results]


def main() -> None:
    session = Session()

    # ---- 1. co-run vs solo under a conventionally shared LRU L2 ----------
    shared = corun(session, "lru")
    alone = solo_ipcs(session, "lru")
    print(f"{'core':>4s} {'workload':24s} {'solo IPC':>9s} {'co-run':>7s} "
          f"{'slowdown':>9s}")
    for core_id, core in enumerate(shared.cores):
        slowdown = alone[core_id] / core.ipc
        print(f"{core_id:>4d} {CORES[core_id][:24]:24s} "
              f"{alone[core_id]:>9.3f} {core.ipc:>7.3f} {slowdown:>8.3f}x")
    print(f"inter-core evictions (lru):       "
          f"{shared.total_inter_core_evictions:6d}  "
          f"occupancy {shared.occupancy}")
    assert shared.total_inter_core_evictions > 0, (
        "contending co-run must produce inter-core evictions"
    )

    # ---- 2. the same co-run under a way-partitioned L2 -------------------
    isolated = corun(session, "partition:base=lru")
    print(f"inter-core evictions (partition): "
          f"{isolated.total_inter_core_evictions:6d}  "
          f"occupancy {isolated.occupancy}")
    assert (
        isolated.total_inter_core_evictions
        < shared.total_inter_core_evictions
    ), "way partitioning must reduce inter-core evictions"

    # ---- 3. one core degenerates to the single-core simulator ------------
    [multi] = session.run(Scenario(cores=(tiny_spec(),)))
    [single] = session.run(Scenario(benchmarks=(tiny_spec(),)))
    assert multi.result.to_dict() == single.result.to_dict(), (
        "cores=[x] must be bit-identical to benchmarks=[x]"
    )
    print("N=1 multi-core is bit-identical to the single-core path")


if __name__ == "__main__":
    main()
