#!/usr/bin/env python3
"""Quickstart: run one benchmark under SRRIP and TRRIP-1 and compare.

This walks the whole co-design flow of the paper on the ``sqlite`` proxy
benchmark:

1. build the synthetic program and collect its instrumentation PGO profile;
2. re-compile with temperature-separated sections (.text.hot/.warm/.cold);
3. load it, populating PTE temperature bits;
4. simulate the measured window twice — once with the SRRIP baseline L2 and
   once with TRRIP-1 — and print the MPKI / speedup comparison.

Run with:  python examples/quickstart.py

For regenerating the paper's figures and tables wholesale, prefer the
``repro`` CLI (``repro list`` / ``repro run figure6``), which caches every
simulation in an on-disk result store; see examples/cached_experiments.py
for the library-level version of that flow.
"""

from __future__ import annotations

from repro import CoDesignPipeline, SimulatorConfig, SystemSimulator
from repro.workloads import InputSet, get_spec


def run_policy(prepared, policy: str):
    """Simulate the prepared workload with a given L2 replacement policy."""
    config = SimulatorConfig.scaled().with_l2_policy(policy)
    simulator = SystemSimulator(
        config, translator=prepared.mmu(), benchmark=prepared.spec.name
    )
    generator = prepared.trace_generator(InputSet.EVALUATION)
    simulator.warm_up(generator.records(prepared.spec.warmup_instructions))
    return simulator.run(generator.records(prepared.spec.eval_instructions))


def main() -> None:
    spec = get_spec("sqlite")
    print(f"Preparing {spec.name!r}: {spec.description}")

    prepared = CoDesignPipeline().prepare(spec)
    sections = ", ".join(
        f"{s.name}={s.size_bytes // 1024}kB" for s in prepared.binary.image.sections
    )
    print(f"PGO sections: {sections}")
    print(
        f"Loader tagged {prepared.loaded.tagged_pages} of "
        f"{prepared.loaded.code_pages} code pages with temperature bits\n"
    )

    baseline = run_policy(prepared, "srrip")
    trrip = run_policy(prepared, "trrip-1")

    print(f"{'metric':28s} {'SRRIP':>12s} {'TRRIP-1':>12s}")
    print(f"{'cycles':28s} {baseline.cycles:12.0f} {trrip.cycles:12.0f}")
    print(f"{'IPC':28s} {baseline.ipc:12.3f} {trrip.ipc:12.3f}")
    print(
        f"{'L2 instruction MPKI':28s} {baseline.l2_inst_mpki:12.2f} "
        f"{trrip.l2_inst_mpki:12.2f}"
    )
    print(
        f"{'L2 data MPKI':28s} {baseline.l2_data_mpki:12.2f} "
        f"{trrip.l2_data_mpki:12.2f}"
    )
    inst_red, data_red = trrip.mpki_reduction_over(baseline)
    print(
        f"\nTRRIP-1 vs SRRIP: speedup {trrip.speedup_over(baseline) * 100:+.2f}%, "
        f"instruction MPKI {inst_red:+.1f}%, data MPKI {data_red:+.1f}%"
    )


if __name__ == "__main__":
    main()
