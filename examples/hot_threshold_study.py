#!/usr/bin/env python3
"""Study how the compiler hot threshold changes TRRIP's behaviour (Figure 8).

Sweeps ``percentile_hot`` from 10% to 100% for a benchmark: at low thresholds
only the very hottest functions land in ``.text.hot`` (little code protected),
at 100% every executed block is "hot" (equivalent to CLIP's blind
prioritisation).  The script prints the text-section split and the TRRIP-1
speedup over SRRIP at each point, plus the page accounting for the chosen page
size — the data behind Figures 8a/8b and Table 5.

Run with:  python examples/hot_threshold_study.py [benchmark] [page_size]
"""

from __future__ import annotations

import sys

from repro.common.temperature import Temperature
from repro.core.pipeline import CoDesignPipeline, PipelineOptions
from repro.experiments.figure8 import run_figure8
from repro.osmodel.pages import count_pages_by_temperature
from repro.workloads import get_spec

THRESHOLDS = (0.10, 0.80, 0.99, 0.9999, 1.0)


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "sqlite"
    page_size = int(sys.argv[2]) if len(sys.argv) > 2 else 4096

    print(f"Hot-threshold sweep for {benchmark!r} (page size {page_size} B)\n")
    points = run_figure8(benchmarks=[benchmark], thresholds=THRESHOLDS)

    print(
        f"{'pct_hot':>8s} {'hot text':>9s} {'warm text':>10s} {'cold text':>10s} "
        f"{'TRRIP-1 speedup':>16s}"
    )
    for point in points:
        print(
            f"{point.percentile_hot:8.4f} "
            f"{point.text_fractions[Temperature.HOT]:9.3f} "
            f"{point.text_fractions[Temperature.WARM]:10.3f} "
            f"{point.text_fractions[Temperature.COLD]:10.3f} "
            f"{point.speedup_over_srrip * 100:+15.2f}%"
        )

    print("\nPage accounting at the default threshold (99%):")
    prepared = CoDesignPipeline(
        PipelineOptions(percentile_hot=0.99, page_size=page_size)
    ).prepare(get_spec(benchmark))
    counts = count_pages_by_temperature(prepared.binary.image, page_size)
    print(
        f"  hot pages: {counts[Temperature.HOT]}, warm pages: {counts[Temperature.WARM]}, "
        f"cold pages: {counts[Temperature.COLD]}"
    )
    print(
        f"  loader tagged {prepared.loaded.tagged_pages} pages, "
        f"{prepared.loaded.mixed_temperature_pages} pages straddle two temperatures"
    )
    print(f"  approximate binary size: {prepared.binary.image.binary_size} bytes")


if __name__ == "__main__":
    main()
