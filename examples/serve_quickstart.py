#!/usr/bin/env python3
"""Quickstart for the simulation service (`repro serve`).

The daemon in this repository turns the replay engine into a queryable
service: POST a declarative submission, get a content-addressed job id,
poll it, fetch results.  Identical concurrent submissions are deduplicated
onto one running simulation, a full queue answers 429 with a Retry-After
estimate, and SIGTERM drains every accepted job before the process exits.

This example embeds the server in-process on an ephemeral port — exactly
what the test suite does — and talks to it over real HTTP with the
blocking :mod:`repro.client`.  Against a real daemon, start one with::

    repro serve --workers 2 --store /tmp/repro-store

and point :class:`~repro.client.ReproClient` (or ``repro submit --tiny
--wait``) at it.

Run with:  python examples/serve_quickstart.py
"""

from __future__ import annotations

import tempfile

from repro.api.session import Session
from repro.client import ReproClient
from repro.experiments.store import ResultStore
from repro.server import JobManager, ReproServer
from repro.sim.config import SimulatorConfig

SUBMISSION = {
    "benchmarks": ["tiny"],
    "policies": ["srrip", "lru", "trrip-1"],
    "label": "serve quickstart",
}


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro-serve-") as store_root:
        # Each worker thread gets its own Session over the shared store
        # root; the manager aggregates their cache counters for /metrics.
        manager = JobManager(
            session_factory=lambda: Session(
                config=SimulatorConfig.scaled(), store=ResultStore(store_root)
            ),
            workers=1,
            queue_size=8,
        )
        with ReproServer(manager, port=0) as server:
            print(f"serving on {server.url}")
            client = ReproClient(server.url)

            accepted = client.submit(SUBMISSION)
            print(
                f"accepted job {accepted['job']}: {accepted['points']} "
                f"point(s), state {accepted['state']}"
            )

            # An identical submission attaches to the same job instead of
            # simulating again — dedup is by content hash over the plan's
            # result-store run keys.
            again = client.submit(SUBMISSION)
            assert again["job"] == accepted["job"] and again["deduplicated"]
            print(f"identical resubmission attached to {again['job']}")

            client.wait(accepted["job"], timeout=300)
            payload = client.result(accepted["job"])
            print(f"{'benchmark':12s} {'policy':10s} {'IPC':>7s}")
            for entry in payload["results"]:
                print(
                    f"{entry['benchmark']:12s} {entry['policy']:10s} "
                    f"{entry['result']['ipc']:7.3f}"
                )

            metrics = client.metrics()
            jobs = metrics["jobs"]
            print(
                f"jobs: {jobs['submitted']} submitted, {jobs['deduped']} "
                f"deduplicated, {jobs['completed']} completed; store wrote "
                f"{metrics['store']['writes']} entr(y/ies)"
            )
            assert jobs["deduped"] == 1 and jobs["completed"] == 1
        print("server drained and stopped")


if __name__ == "__main__":
    main()
