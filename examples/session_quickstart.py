#!/usr/bin/env python3
"""Quickstart for the declarative Scenario/Session API.

One :class:`~repro.api.session.Session` is the front door to every
simulation in this repository: describe *what* to run as
:class:`~repro.api.scenario.Scenario` objects (workloads x structured
policies x configuration), let the session expand them into a deduplicated
run plan, and stream results back in deterministic order.  With a result
store attached, re-running the same plan simulates nothing.

Run with:  python examples/session_quickstart.py
"""

from __future__ import annotations

import tempfile

from repro.api import PolicySpec, Scenario, Session
from repro.experiments.store import ResultStore
from repro.workloads.spec import tiny_spec


def build_scenarios() -> tuple[Scenario, Scenario]:
    """Two overlapping policy studies on the miniature smoke workload."""
    # Policies can be plain names, parameterised CLI-style tokens, or
    # PolicySpec objects; unknown names/parameters fail loudly right here.
    headline = Scenario(
        benchmarks=tiny_spec(),
        policies=("srrip", "trrip-1", "trrip-2"),
        label="headline policies",
    )
    tuned = Scenario(
        benchmarks=tiny_spec(),
        policies=("srrip", PolicySpec.parse("ship:shct_bits=3")),
        label="tuned SHiP",
    )
    return headline, tuned


def report(session: Session, label: str) -> None:
    scenarios = build_scenarios()

    # A plan is free to build and inspect: no simulation has happened yet.
    plan = session.plan(*scenarios)
    print(
        f"--- {label}: {plan.total_runs} requested points, "
        f"{plan.unique_runs} unique ({plan.deduplicated} deduplicated)"
    )

    print(f"{'benchmark':12s} {'policy':18s} {'IPC':>7s} {'L2 iMPKI':>9s}")
    for request, artifacts in session.stream(*scenarios):
        result = artifacts.result
        print(
            f"{request.benchmark:12s} {request.policy.canonical():18s} "
            f"{result.ipc:7.3f} {result.l2_inst_mpki:9.2f}"
        )
    print(f"simulations actually run: {session.simulations_run}\n")


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro-session-") as store_root:
        # First session: the shared SRRIP baseline is simulated once
        # (deduplicated across scenarios), everything lands in the store.
        report(Session(store=ResultStore(store_root)), "first session")

        # Second session, same store: the whole plan replays from cache.
        second = Session(store=ResultStore(store_root))
        report(second, "second session (cached)")
        assert second.simulations_run == 0, "expected a full cache replay"


if __name__ == "__main__":
    main()
