#!/usr/bin/env python3
"""Compare every evaluated replacement policy on a few mobile proxy benchmarks.

Reproduces a miniature Figure 6 / Table 3: for each benchmark the script runs
the SRRIP baseline plus LRU, DRRIP, SHiP, CLIP, Emissary and both TRRIP
variants, then prints speedups and instruction/data MPKI reductions, ending
with the geomean row the paper headlines.

Run with:  python examples/policy_comparison.py [benchmark ...]
"""

from __future__ import annotations

import sys

from repro.experiments import run_policy_sweep
from repro.sim.config import EVALUATED_POLICIES

DEFAULT_BENCHMARKS = ("clang", "sqlite", "rapidjson")


def main() -> None:
    benchmarks = tuple(sys.argv[1:]) or DEFAULT_BENCHMARKS
    print(f"Running policy sweep over: {', '.join(benchmarks)}")
    print("(policies: " + ", ".join(EVALUATED_POLICIES) + "; baseline: srrip)\n")

    sweep = run_policy_sweep(benchmarks=benchmarks)

    header = f"{'benchmark':12s} {'policy':10s} {'speedup%':>9s} {'iMPKI red%':>11s} {'dMPKI red%':>11s}"
    print(header)
    print("-" * len(header))
    for benchmark in sweep.benchmarks:
        baseline = sweep.baseline(benchmark)
        print(
            f"{benchmark:12s} {'srrip':10s} {'--':>9s} "
            f"{baseline.l2_inst_mpki:>11.2f} {baseline.l2_data_mpki:>11.2f}  (raw MPKI)"
        )
        for policy in sweep.policies:
            inst_red, data_red = sweep.mpki_reduction(benchmark, policy)
            print(
                f"{'':12s} {policy:10s} {sweep.speedup(benchmark, policy) * 100:>+9.2f} "
                f"{inst_red:>+11.1f} {data_red:>+11.1f}"
            )
        print()

    print("geomean over the selected benchmarks:")
    for policy in sweep.policies:
        print(
            f"  {policy:10s} speedup {sweep.geomean_speedup(policy) * 100:+6.2f}%  "
            f"inst MPKI {sweep.geomean_inst_reduction(policy):+6.1f}%  "
            f"data MPKI {sweep.geomean_data_reduction(policy):+6.1f}%"
        )


if __name__ == "__main__":
    main()
