#!/usr/bin/env python3
"""Workload families + trace capture/replay in a dozen lines.

The fixed Table 2 catalog is one point set; workload families are the open
grid: parametric generators (``streaming``, ``pointer-chase``, ``zipf``,
``phased``, ``interleave``) whose tokens parse exactly like policy tokens.
Combined with a trace archive, a family's trace is generated once and
replayed byte-for-byte by every later run.

Run with:  python examples/workload_families.py
"""

from __future__ import annotations

import tempfile

from repro.api import Scenario, Session, TraceArchive, WorkloadFamilySpec

#: Keep the example fast: small measured windows for every family point.
FAST = "instructions=4000,warmup=1000"


def main() -> None:
    with tempfile.TemporaryDirectory() as trace_dir:
        session = Session(traces=TraceArchive(trace_dir))

        # Grid a zipf skew sweep against two policies.  Family tokens can sit
        # anywhere a benchmark name can.
        sweep = Scenario(
            benchmarks=[
                f"zipf:alpha=0.4,{FAST}",
                f"zipf:alpha=1.2,{FAST}",
                WorkloadFamilySpec.of("zipf", alpha=2.0).synthesize()
                .with_overrides(eval_instructions=4000, warmup_instructions=1000),
            ],
            policies=("srrip", "trrip-1"),
            label="zipf skew sweep",
        )
        print("alpha sweep (L2 instruction MPKI under srrip / trrip-1):")
        for request, artifacts in session.stream(sweep):
            print(
                f"  {request.benchmark:42s} {request.policy.canonical():8s} "
                f"l2_inst_mpki={artifacts.result.l2_inst_mpki:6.2f}"
            )
        print(f"first session: {session.traces.writes} trace(s) captured")

        # A fresh session (think: another process, a CI job, a pool worker)
        # pointed at the same archive replays every trace byte-for-byte
        # instead of regenerating.
        replay = Session(traces=TraceArchive(trace_dir))
        replay.run(sweep)
        print(
            f"second session: {replay.traces.hits} trace(s) replayed, "
            f"{replay.traces.writes} regenerated"
        )


if __name__ == "__main__":
    main()
