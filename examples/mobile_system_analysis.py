#!/usr/bin/env python3
"""Frontend-bottleneck analysis of the mobile system-software components.

Reproduces the motivation of the paper (Figures 1-3) on the five synthetic
system components (interp, ui, graphics, render, js_runtime):

* Top-Down cycle breakdown showing the frontend bound;
* reuse-distance distribution of hot instruction lines at the L2, in the base
  view and the hot-only (~) view — the evidence that hot code is evicted by
  non-hot lines before it is reused.

Run with:  python examples/mobile_system_analysis.py
"""

from __future__ import annotations

from repro.experiments import (
    format_figure3,
    format_topdown_rows,
    run_figure1,
    run_figure3,
)
from repro.workloads import SYSTEM_COMPONENT_NAMES


def main() -> None:
    print("Top-Down breakdown of PGO-compiled mobile system components")
    print("(Figure 1: cycles lost to ifetch dominate even with PGO)\n")
    rows = run_figure1()
    print(format_topdown_rows(rows))
    worst = max(rows, key=lambda row: row.frontend_bound)
    print(
        f"\nMost frontend-bound component: {worst.benchmark} "
        f"({worst.frontend_bound * 100:.1f}% of cycles in ifetch+mispredict)\n"
    )

    print("Reuse distance of hot instruction lines in the L2 (Figure 3 view)")
    print("base = counting all intervening lines, '~' = counting hot lines only\n")
    reuse_rows = run_figure3(benchmarks=SYSTEM_COMPONENT_NAMES)
    print(format_figure3(reuse_rows))
    print(
        "\nHot lines whose reuse distance exceeds the 8-way associativity "
        "(buckets 9-16 and 16+) are the ones TRRIP keeps resident."
    )


if __name__ == "__main__":
    main()
